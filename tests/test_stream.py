"""Unit, property, and integration tests for :mod:`repro.stream`.

The load-bearing contract is the Gram equivalence: folding a dataset in
as N batches must reproduce the one-shot normal-equation blocks (and the
solved coefficients) within :data:`repro.stream.ACCUMULATION_RTOL` — a
hypothesis property over random partitions.  On top of that: drift
hysteresis, active-sampling determinism, the refresh-vs-respec control
loop, checkpoint round-trips, and the ``observe_stream`` serving op.
"""

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import (
    InferredModel,
    ModelSpec,
    ProfileDataset,
    ProfileRecord,
    TransformKind,
)
from repro.core.genetic import GeneticSearch
from repro.core.regression import accumulate_gram, fit_ols
from repro.store import Store
from repro.stream import (
    ACCUMULATION_RTOL,
    ActiveSampler,
    DriftConfig,
    DriftDetector,
    GramAccumulator,
    StreamingRespecifier,
    records_from_rows,
)
from tests.conftest import make_synthetic_dataset


def _fitted_model(ds):
    spec = ModelSpec(
        transforms={name: TransformKind.LINEAR for name in ds.variable_names},
        interactions=frozenset([("x1", "y1")]),
    )
    return InferredModel.fit(spec, ds, response="log")


@pytest.fixture(scope="module")
def stream_dataset():
    return make_synthetic_dataset(n_per_app=30)


@pytest.fixture(scope="module")
def stream_model(stream_dataset):
    return _fitted_model(stream_dataset)


def _slices(cuts, n):
    bounds = [0, *sorted(cuts), n]
    return [(a, b) for a, b in zip(bounds, bounds[1:]) if a < b]


# -- the equivalence contract ----------------------------------------------------------


class TestGramEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(cuts=st.lists(st.integers(1, 89), max_size=6, unique=True))
    def test_n_batch_accumulation_matches_one_shot(
        self, cuts, stream_dataset, stream_model
    ):
        """Any partition of the rows folds to the same blocks and the same
        solved coefficients as a single accumulate_gram over all rows."""
        ds, model = stream_dataset, stream_model
        acc = GramAccumulator(model)
        for a, b in _slices(cuts, len(ds)):
            part = ProfileDataset(ds.x_names, ds.y_names, ds.records[a:b])
            acc.ingest(part)
        assert acc.rows == len(ds)

        design = model.prepared_design(ds)
        targets = model.transform_targets(ds.targets())
        gram, moment = accumulate_gram(design, targets)
        scale = max(np.abs(gram).max(), 1.0)
        assert np.allclose(acc.gram, gram, rtol=0, atol=ACCUMULATION_RTOL * scale)
        assert np.allclose(
            acc.moment, moment, rtol=0,
            atol=ACCUMULATION_RTOL * max(np.abs(moment).max(), 1.0),
        )

        streamed = acc.solve()
        batch = fit_ols(design, targets, model.fit_column_names)
        assert streamed is not None
        assert np.allclose(
            np.r_[streamed.intercept, streamed.coefficients],
            np.r_[batch.intercept, batch.coefficients],
            rtol=1e-6,
        )

    def test_refresh_reproduces_batch_rebuilt_model(
        self, stream_dataset, stream_model
    ):
        """Streamed accumulator + solve reproduces the batch fit: the
        refreshed model predicts identically (well under the documented
        tolerance) to the incumbent it was derived from."""
        acc = GramAccumulator.from_model(stream_model, stream_dataset)
        refreshed = acc.refresh()
        assert refreshed is not None
        np.testing.assert_allclose(
            refreshed.predict(stream_dataset),
            stream_model.predict(stream_dataset),
            rtol=1e-6,
        )

    def test_pinv_fallback_on_rank_deficient_gram(self):
        """Exactly collinear surviving columns (a singular Gram) fall back
        to the minimum-norm solution — identical to the batch path's SVD
        lstsq — instead of refusing to refresh."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=40)
        y = 3.0 + 2.0 * x
        aug = np.column_stack([np.ones_like(x), x, x])  # duplicated column
        stub = SimpleNamespace(fit_column_names=("a", "b"))
        acc = GramAccumulator(stub)
        acc.gram = aug.T @ aug
        acc.moment = aug.T @ y
        acc.rows = len(x)
        fit = acc.solve()
        assert fit is not None
        expected, *_ = np.linalg.lstsq(aug, y, rcond=None)
        np.testing.assert_allclose(
            np.r_[fit.intercept, fit.coefficients], expected, atol=1e-8
        )

    def test_underdetermined_returns_none(self):
        stub = SimpleNamespace(fit_column_names=("a", "b"))
        acc = GramAccumulator(stub)  # zero rows: nothing to solve
        assert acc.solve() is None
        assert acc.refresh() is None


# -- drift hysteresis ------------------------------------------------------------------


class TestDriftDetector:
    CONFIG = DriftConfig(
        window=16, min_fill=4, trip_ratio=1.5, clear_ratio=1.1, patience=2
    )

    def test_no_trip_below_threshold(self):
        det = DriftDetector(1.0, self.CONFIG)
        for _ in range(10):
            assert not det.observe([1.0, 1.1, 0.9, 1.2])
        assert det.score() < self.CONFIG.trip_ratio

    def test_one_bad_batch_never_trips(self):
        det = DriftDetector(1.0, self.CONFIG)
        det.observe([1.0] * 8)
        assert not det.observe([5.0] * 16)  # over threshold, patience 1/2
        assert not det.tripped

    def test_patience_consecutive_batches_trip_and_latch(self):
        det = DriftDetector(1.0, self.CONFIG)
        det.observe([5.0] * 16)
        assert det.observe([5.0] * 16)
        assert det.tripped
        # Latched: even a good batch does not clear it.
        assert det.observe([1.0] * 16)

    def test_interrupted_streak_resets(self):
        det = DriftDetector(1.0, self.CONFIG)
        det.observe([5.0] * 16)
        det.observe([1.0] * 16)  # streak broken
        assert not det.observe([5.0] * 16)

    def test_min_fill_gates_verdicts(self):
        det = DriftDetector(1.0, self.CONFIG)
        assert not det.observe([99.0])  # only 1 < min_fill=4 errors
        assert not det.tripped

    def test_reset_disarms_until_recovered(self):
        det = DriftDetector(1.0, self.CONFIG)
        det.observe([5.0] * 16)
        det.observe([5.0] * 16)
        assert det.tripped
        det.reset(1.0)
        assert not det.tripped and det.fill == 0
        # Still degraded right after the reset: must NOT re-trip while
        # disarmed, however long it stays bad.
        for _ in range(6):
            assert not det.observe([5.0] * 8)
        # Recovery under clear_ratio re-arms; sustained degradation after
        # that trips again.
        for _ in range(4):
            det.observe([1.0] * 16)
        assert not det.tripped
        det.observe([5.0] * 16)
        assert det.observe([5.0] * 16)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(window=4, min_fill=5)
        with pytest.raises(ValueError):
            DriftConfig(trip_ratio=1.2, clear_ratio=1.3)
        with pytest.raises(ValueError):
            DriftConfig(patience=0)
        with pytest.raises(ValueError):
            DriftDetector(0.0)


# -- active sampling -------------------------------------------------------------------


class _SlopeModel:
    """predict_rows = rows @ w — a committee member with known opinions."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_rows(self, rows):
        return np.atleast_2d(rows) @ self.w


class TestActiveSampler:
    def test_committee_needs_two_models(self):
        with pytest.raises(ValueError):
            ActiveSampler([_SlopeModel([1.0])])

    def test_scores_rank_disagreement(self):
        # Models agree at rows ~ [1, 1] and diverge along the second axis.
        sampler = ActiveSampler(
            [_SlopeModel([1.0, 1.0]), _SlopeModel([1.0, 3.0])]
        )
        rows = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 4.0]])
        scores = sampler.scores(rows)
        assert scores[0] == 0.0  # identical predictions
        assert scores[2] > scores[1] > scores[0]

    def test_select_is_deterministic_and_stable(self):
        sampler = ActiveSampler(
            [_SlopeModel([1.0, 1.0]), _SlopeModel([1.0, 3.0])]
        )
        rows = np.array(
            [[1.0, 2.0], [1.0, 2.0], [1.0, 5.0], [1.0, 0.0]]
        )
        first = sampler.select(rows, 3)
        assert first.tolist() == [2, 0, 1]  # ties resolve by index
        assert sampler.select(rows, 3).tolist() == first.tolist()
        assert sampler.select(rows, 0).tolist() == []


# -- the control loop ------------------------------------------------------------------


FAST_DRIFT = DriftConfig(
    window=16, min_fill=4, trip_ratio=1.5, clear_ratio=1.2, patience=2
)


def _batch(ds, n, rng, shift=0.0):
    """Fresh records from (optionally shifted) synthetic structure."""
    batch = ProfileDataset(ds.x_names, ds.y_names)
    for _ in range(n):
        x = rng.normal(loc=0.5, scale=1.0, size=2)
        y = rng.uniform(0.5, 2.0, size=2)
        z = 2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.8 * y[0] + 0.4 * x[0] * y[0]
        z += shift * x[1] * y[1]  # structural term the incumbent never saw
        batch.add(ProfileRecord("alpha", x, y, float(np.exp(z / 4.0))))
    return batch


@pytest.fixture()
def respecifier(stream_dataset):
    ds = ProfileDataset(stream_dataset.x_names, stream_dataset.y_names)
    ds.extend(stream_dataset.records)
    search = GeneticSearch(population_size=6, seed=0)
    respec = StreamingRespecifier(ds, search, FAST_DRIFT)
    respec.bootstrap(generations=1)
    return respec


class TestStreamingRespecifier:
    def test_requires_bootstrap(self, stream_dataset):
        respec = StreamingRespecifier(stream_dataset)
        with pytest.raises(RuntimeError):
            respec.ingest(stream_dataset)

    def test_stationary_batches_refresh_only(self, respecifier):
        rng = np.random.default_rng(4)
        respecifier.set_baseline(
            float(np.median(
                respecifier._prequential_errors(_batch(respecifier.dataset, 32, rng))
            ))
        )
        n_before = len(respecifier.dataset)
        for _ in range(4):
            outcome = respecifier.ingest(_batch(respecifier.dataset, 12, rng))
            assert outcome.action == "refresh" and outcome.refreshed
            assert not outcome.tripped
        assert respecifier.refreshes == 4
        assert respecifier.respecs == 0
        assert len(respecifier.dataset) == n_before + 48

    def test_drift_trips_respec_and_recalibrates(self, respecifier):
        rng = np.random.default_rng(5)
        respecifier.set_baseline(
            float(np.median(
                respecifier._prequential_errors(_batch(respecifier.dataset, 32, rng))
            ))
        )
        actions = []
        for _ in range(6):
            outcome = respecifier.ingest(_batch(respecifier.dataset, 12, rng, shift=2.5))
            actions.append(outcome.action)
            if outcome.action == "respec":
                break
        assert "respec" in actions
        assert respecifier.respecs == 1
        assert respecifier._staleness == 0  # staleness histogram reset
        # The next batch recalibrates the baseline in prequential units:
        # its score lands at ~1.0 instead of inheriting GA fitness units.
        outcome = respecifier.ingest(_batch(respecifier.dataset, 12, rng, shift=2.5))
        assert outcome.drift_score == pytest.approx(1.0, abs=0.35)
        assert not outcome.tripped

    def test_deferred_respec_reports_needs_respec(self, respecifier):
        rng = np.random.default_rng(6)
        respecifier.set_baseline(1e-6)  # anything trips
        outcomes = [
            respecifier.ingest(_batch(respecifier.dataset, 8, rng), allow_respec=False)
            for _ in range(3)
        ]
        assert outcomes[-1].tripped and outcomes[-1].needs_respec
        assert respecifier.respecs == 0
        respecifier.respec(generations=1)
        assert respecifier.respecs == 1

    def test_drift_scored_against_reference_not_refreshed_model(
        self, respecifier
    ):
        """Coefficient refreshes must not absorb the drift signal: the
        detector's prequential errors come from the frozen snapshot of
        the last re-specification."""
        rng = np.random.default_rng(7)
        reference = respecifier.model
        respecifier.ingest(_batch(respecifier.dataset, 12, rng))
        assert respecifier.model is not reference  # refresh rebound coefficients
        assert respecifier.reference is reference  # scoring snapshot frozen
        probe = _batch(respecifier.dataset, 8, rng)
        errors = respecifier._prequential_errors(probe)
        expected = np.abs(reference.predict(probe) - probe.targets()) / np.maximum(
            np.abs(probe.targets()), 1e-12
        )
        np.testing.assert_allclose(errors, expected)

    def test_select_next_falls_back_without_sampler(self, respecifier):
        respecifier.sampler = None
        assert respecifier.select_next(np.zeros((5, 4)), 3).tolist() == [0, 1, 2]

    def test_stats_dict_shape(self, respecifier):
        stats = respecifier.stats_dict()
        assert stats["batches_ingested"] == 0
        assert stats["respecs"] == 0
        assert stats["dataset_size"] == len(respecifier.dataset)

    def test_records_from_rows(self):
        rows = np.array([[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]])
        records = records_from_rows("app", rows, [0.5, 0.7], n_software=2)
        assert [r.application for r in records] == ["app", "app"]
        np.testing.assert_array_equal(records[1].x, [5.0, 6.0])
        np.testing.assert_array_equal(records[1].y, [7.0, 8.0])
        assert records[1].z == 0.7


# -- checkpoint / recover --------------------------------------------------------------


class TestCheckpointRoundTrip:
    def test_round_trip_restores_exact_state(self, tmp_path, stream_dataset, stream_model):
        store = Store(tmp_path / "store")
        acc = GramAccumulator.from_model(stream_model, stream_dataset, name="rt")
        key = acc.checkpoint(store)
        assert key.startswith("stream/rt/ckpt/00000001-")

        fresh = GramAccumulator(stream_model, name="rt")
        assert fresh.recover(store)
        np.testing.assert_array_equal(fresh.gram, acc.gram)
        np.testing.assert_array_equal(fresh.moment, acc.moment)
        assert (fresh.rows, fresh.batches, fresh.seq) == (
            acc.rows, acc.batches, acc.seq,
        )

    def test_corrupt_checkpoint_falls_back_to_previous(
        self, tmp_path, stream_dataset, stream_model
    ):
        store = Store(tmp_path / "store")
        acc = GramAccumulator.from_model(stream_model, stream_dataset, name="cc")
        acc.checkpoint(store)
        good_rows = acc.rows
        half = ProfileDataset(
            stream_dataset.x_names,
            stream_dataset.y_names,
            stream_dataset.records[:10],
        )
        acc.ingest(half)
        key2 = acc.checkpoint(store)
        # Corrupt the newest column in place: its digest no longer matches
        # the content-addressed key, so recovery must reject it.
        path = store.path_for(key2)
        payload = np.load(path)
        payload[-1] += 1.0
        np.save(path, payload)

        before = obs.counter("stream.checkpoint_rejects").value
        fresh = GramAccumulator(stream_model, name="cc")
        assert fresh.recover(store)
        assert fresh.rows == good_rows
        assert obs.counter("stream.checkpoint_rejects").value == before + 1

    def test_wrong_width_checkpoint_is_skipped(self, tmp_path, stream_dataset, stream_model):
        store = Store(tmp_path / "store")
        acc = GramAccumulator.from_model(stream_model, stream_dataset, name="w")
        acc.checkpoint(store)
        narrow = GramAccumulator(
            SimpleNamespace(fit_column_names=("only",)), name="w"
        )
        assert not narrow.recover(store)

    def test_prune_keeps_last_three(self, tmp_path, stream_dataset, stream_model):
        store = Store(tmp_path / "store")
        acc = GramAccumulator.from_model(stream_model, stream_dataset, name="pr")
        for _ in range(5):
            acc.checkpoint(store)
        assert len(acc._list_checkpoints(store)) == 3
        assert acc._list_checkpoints(store)[-1][0] == 5

    def test_same_width_different_spec_is_never_restored(self, tmp_path):
        """The poisoning scenario: a checkpoint from a DIFFERENT spec with
        the SAME design width must not seed this accumulator's blocks."""
        store = Store(tmp_path / "store")
        old = GramAccumulator(
            SimpleNamespace(fit_column_names=("a", "b")), name="sw"
        )
        old.gram += np.eye(3)
        old.rows = 7
        old.checkpoint(store)

        same_width = GramAccumulator(
            SimpleNamespace(fit_column_names=("c", "d")), name="sw"
        )
        assert not same_width.recover(store)
        assert same_width.rows == 0

    def test_purge_other_specs(self, tmp_path):
        store = Store(tmp_path / "store")
        old = GramAccumulator(
            SimpleNamespace(fit_column_names=("a", "b")), name="pg"
        )
        old.checkpoint(store)
        new = GramAccumulator(
            SimpleNamespace(fit_column_names=("c", "d")), name="pg",
            seq=old.seq,
        )
        new.checkpoint(store)
        assert new.purge_other_specs(store) == 1
        assert len(new._list_checkpoints(store, all_specs=True)) == 1
        # The old spec's checkpoint is gone for good.
        revived = GramAccumulator(
            SimpleNamespace(fit_column_names=("a", "b")), name="pg"
        )
        assert not revived.recover(store)

    def test_respec_interleaved_with_checkpoints(self, tmp_path, stream_dataset):
        """Checkpoint → respec → checkpoint: the sequence counter carries
        across the respec, so pruning keeps the post-respec checkpoints
        and recovery restores the CURRENT accumulator's state — never the
        pre-respec blocks."""
        ds = ProfileDataset(stream_dataset.x_names, stream_dataset.y_names)
        ds.extend(stream_dataset.records)
        store = Store(tmp_path / "store")
        respec = StreamingRespecifier(
            ds,
            GeneticSearch(population_size=6, seed=0),
            FAST_DRIFT,
            checkpoint_every=1,
            store=store,
            name="il",
        )
        respec.bootstrap(generations=1)
        respec.set_baseline(10.0)  # roomy: refreshes only
        rng = np.random.default_rng(9)
        for _ in range(3):
            respec.ingest(_batch(ds, 8, rng))
        seq_before = respec.accumulator.seq
        assert seq_before == 3

        respec.respec(generations=1)
        assert respec.accumulator.seq == seq_before  # carried forward
        respec.ingest(_batch(ds, 8, rng))  # checkpoints at seq_before + 1

        acc = respec.accumulator
        entries = acc._list_checkpoints(store)
        assert entries and entries[-1][0] == seq_before + 1

        fresh = GramAccumulator(acc.model, name="il")
        assert fresh.recover(store)
        assert fresh.seq == seq_before + 1
        assert fresh.rows == acc.rows
        np.testing.assert_array_equal(fresh.gram, acc.gram)
        np.testing.assert_array_equal(fresh.moment, acc.moment)

    def test_respecifier_checkpoint_wiring(self, tmp_path, stream_dataset):
        ds = ProfileDataset(stream_dataset.x_names, stream_dataset.y_names)
        ds.extend(stream_dataset.records)
        store = Store(tmp_path / "store")
        respec = StreamingRespecifier(
            ds,
            GeneticSearch(population_size=6, seed=0),
            FAST_DRIFT,
            checkpoint_every=2,
            store=store,
            name="wired",
        )
        respec.bootstrap(generations=1)
        rng = np.random.default_rng(8)
        respec.set_baseline(1.0)
        for _ in range(4):
            respec.ingest(_batch(ds, 8, rng))
        assert (tmp_path / "store" / "stream" / "wired" / "ckpt").is_dir()
        assert respec.recover()


# -- the drifting-SpMV acceptance scenario ---------------------------------------------


class TestSpMVDriftScenario:
    def test_drift_trips_stationary_does_not(self):
        """The ISSUE's acceptance criterion, at experiment small scale:
        the drifting-sparsity stream trips >= 1 re-specification, the
        stationary stream stays entirely on cheap refreshes."""
        from repro.experiments import stream_demo
        from repro.experiments.common import SCALES

        result = stream_demo.run(SCALES["small"])
        drifting, stationary = result["drifting"], result["stationary"]
        assert drifting["trips"] >= 1
        assert stationary["trips"] == 0
        assert stationary["refreshes"] > 0  # refresh path live, not inert
        assert drifting["refreshes"] > 0
        assert drifting["max_score"] > stationary["max_score"] >= 0.0
        assert "OK" in stream_demo.report(result)


# -- serving integration ---------------------------------------------------------------


def _profiles(n, seed, shift=0.0):
    from repro.serve.bootstrap import _app_records

    return [
        {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
        for p in _app_records(
            "app0", n, np.random.default_rng(seed), shift=shift
        )
    ]


class TestObserveStreamServing:
    def test_round_trip_and_prometheus_labels(self, tmp_path):
        from repro.serve import ServeClient, ServerThread
        from repro.serve.bootstrap import (
            attach_streaming,
            build_service,
            demo_dataset,
        )

        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
        )
        respec = attach_streaming(serving, drift_config=FAST_DRIFT)
        respec.set_baseline(
            float(np.median(respec._prequential_errors(
                ProfileDataset(
                    respec.dataset.x_names,
                    respec.dataset.y_names,
                    respec.dataset.records[:20],
                )
            )))
        )
        try:
            with ServerThread(server) as thread:
                with ServeClient(port=thread.port) as client:
                    v_before = server.slot.version
                    reply = client.observe_stream("app0", _profiles(12, seed=11))
                    assert reply["ok"]
                    assert reply["action"] in ("refresh", "none")
                    assert not reply["respec_scheduled"]
                    if reply["action"] == "refresh":
                        assert reply["model_version"] == v_before + 1
                    stats = client.stats()
                    assert stats["updates"]["stream"]["batches"] == 1
            dump = obs.prometheus_dump(labels={"shard": "0"})
            assert 'repro_stream_drift_score{shard="0"}' in dump
            assert 'repro_serve_update_last_error{shard="0"}' in dump
            assert 'repro_stream_staleness_observations{shard="0"}' in dump
        finally:
            serving.close()

    def test_batch_observe_rejected_while_stream_attached(self, tmp_path):
        """The two maintenance paths must not fight over the model slot:
        with a respecifier attached, the batch 'observe' op is a 409."""
        from repro.serve.bootstrap import (
            attach_streaming,
            build_service,
            demo_dataset,
        )

        server, serving, _ = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
        )
        attach_streaming(serving, drift_config=FAST_DRIFT)
        try:
            reply = asyncio.run(
                serving.handle_observe(
                    {"application": "app0", "profiles": _profiles(4, seed=3)}
                )
            )
            assert reply["ok"] is False and reply["status"] == 409
            assert "observe_stream" in reply["error"]
            assert serving.stats.observations == 0
            assert not serving.update_in_progress
        finally:
            serving.close()

    def test_refresh_publish_throttle(self, tmp_path):
        """publish_every=N: refreshes update the in-memory incumbent every
        batch, but only every Nth refresh reaches the registry/slot —
        keeping the durable fsync off the hot ingest path."""
        from repro.serve.bootstrap import (
            attach_streaming,
            build_service,
            demo_dataset,
        )

        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
        )
        respec = attach_streaming(
            serving, publish_every=3, drift_config=FAST_DRIFT
        )
        respec.set_baseline(10.0)  # roomy: refresh, never trip

        async def scenario():
            v_before = serving.slot.version
            for k in range(3):
                reply = await serving.handle_observe_stream(
                    {"application": "app0", "profiles": _profiles(8, seed=40 + k)}
                )
                assert reply["ok"] and reply["action"] == "refresh"
                if k < 2:
                    assert serving.slot.version == v_before  # deferred
            assert serving.stats.stream_refreshes == 3
            assert serving.slot.version == v_before + 1  # published once
            assert registry.latest_version(serving.key) == v_before + 1

        try:
            asyncio.run(scenario())
        finally:
            serving.close()

    def test_no_stream_attached_is_501(self, tmp_path):
        from repro.serve.bootstrap import build_service, demo_dataset

        server, serving, _ = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
        )
        try:
            reply = asyncio.run(
                serving.handle_observe_stream(
                    {"application": "app0", "profiles": _profiles(2, seed=1)}
                )
            )
            assert reply == {
                "ok": False,
                "status": 501,
                "error": reply["error"],
            }
            assert "attach_stream" in reply["error"]
        finally:
            serving.close()

    def test_drift_trip_schedules_background_respec(self, tmp_path):
        from repro.serve.bootstrap import (
            attach_streaming,
            build_service,
            demo_dataset,
        )

        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
        )
        respec = attach_streaming(
            serving,
            drift_config=DriftConfig(
                window=8, min_fill=1, trip_ratio=1.05, clear_ratio=1.0,
                patience=1,
            ),
        )
        respec.set_baseline(1e-6)  # any real error trips immediately

        async def scenario():
            v_before = serving.slot.version
            reply = await serving.handle_observe_stream(
                {"application": "app0", "profiles": _profiles(8, seed=13)}
            )
            assert reply["ok"] and reply["drift_tripped"]
            assert reply["respec_scheduled"]
            await serving.wait_for_update()
            assert serving.stats.stream_respecs == 1
            assert serving.slot.version == v_before + 1
            assert registry.latest_version(serving.key) == v_before + 1
            assert serving.stats_dict()["stream"]["respecs"] == 1

        try:
            asyncio.run(scenario())
        finally:
            serving.close()

    def test_respec_publishes_under_manager_lock(self, tmp_path):
        """The background respec's publish step must serialize on the
        manager lock (a concurrent observe_stream frame mutates the
        detector window on the executor while holding it): with the lock
        held externally, a finished GA must NOT publish until release."""
        from repro.serve.bootstrap import (
            attach_streaming,
            build_service,
            demo_dataset,
        )

        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
        )
        respec = attach_streaming(
            serving,
            drift_config=DriftConfig(
                window=8, min_fill=1, trip_ratio=1.05, clear_ratio=1.0,
                patience=1,
            ),
        )
        respec.set_baseline(1e-6)  # any real error trips immediately

        async def scenario():
            v_before = serving.slot.version
            reply = await serving.handle_observe_stream(
                {"application": "app0", "profiles": _profiles(8, seed=17)}
            )
            assert reply["ok"] and reply["respec_scheduled"]
            async with serving._lock:
                # Let the GA finish on the executor while we still hold
                # the lock...
                for _ in range(500):
                    if respec.respecs == 1:
                        break
                    await asyncio.sleep(0.01)
                assert respec.respecs == 1
                await asyncio.sleep(0.05)
                # ...the respec task must be parked on the lock, publish
                # not yet visible anywhere.
                assert serving.slot.version == v_before
                assert serving.stats.stream_respecs == 0
            await serving.wait_for_update()
            assert serving.stats.stream_respecs == 1
            assert serving.slot.version == v_before + 1

        try:
            asyncio.run(scenario())
        finally:
            serving.close()
