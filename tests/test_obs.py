"""The observability layer: registry, spans, exporters, no-op mode.

The two ISSUE acceptance properties live here:

* **deterministic aggregation** — metrics recorded by parallel worker
  chunks and merged in input order equal the serial run's, for *any*
  split of the work (hypothesis property plus a real multiprocessing
  run through ``parallel_map(collect_metrics=True)``);
* **no-op mode** — with observability disabled the accessors hand out
  the shared null singletons and the instrumented kernel paths record
  nothing at all.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs, parallel
from repro.obs.export import prometheus_text
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test sees an enabled, empty process-wide registry."""
    obs.configure(enabled=True)
    obs.reset()
    yield
    obs.configure(enabled=True)
    obs.reset()


# -- registry basics -------------------------------------------------------------------


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        c = registry.counter("a")
        c.inc()
        c.inc(4)
        assert registry.counter("a") is c
        assert c.value == 5

    def test_gauge_tracks_updates(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        assert g.updates == 0
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        assert g.updates == 2

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(value)
        # inclusive upper edges; the extra slot is the +inf bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 99.0
        assert h.mean == pytest.approx(106.0 / 5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", bounds=(2.0, 1.0))

    def test_histogram_rejects_conflicting_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        registry.histogram("h", bounds=(1.0, 2.0))  # same bounds: fine
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_empty_histogram_snapshot_has_null_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,))
        state = registry.snapshot()["histograms"]["h"]
        assert state["min"] is None and state["max"] is None


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5

    def test_gauge_last_write_wins_in_merge_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(7.0)
        a.merge(b.snapshot())
        assert a.gauge("g").value == 7.0
        assert a.gauge("g").updates == 2

    def test_untouched_gauge_does_not_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g")  # created but never set
        a.merge(b.snapshot())
        assert a.gauge("g").value == 1.0

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 2.0)).observe(5.0)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.counts == [1, 0, 1]
        assert h.count == 2
        assert h.min == 0.5 and h.max == 5.0

    def test_histogram_bounds_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


# -- spans -----------------------------------------------------------------------------


class TestSpans:
    def test_span_records_wall_and_cpu_histograms(self):
        with obs.span("unit.phase"):
            sum(range(1000))
        snapshot = obs.snapshot()["histograms"]
        assert snapshot["span.unit.phase.wall_seconds"]["count"] == 1
        assert snapshot["span.unit.phase.cpu_seconds"]["count"] == 1
        assert snapshot["span.unit.phase.wall_seconds"]["sum"] >= 0.0

    def test_context_stack_nests(self):
        assert obs.current_span() is None
        with obs.span("outer"):
            with obs.span("inner"):
                assert obs.current_stack() == ["outer", "inner"]
                assert obs.current_span() == "inner"
            assert obs.current_stack() == ["outer"]
        assert obs.current_stack() == []

    def test_span_pops_and_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert obs.current_stack() == []
        assert obs.snapshot()["histograms"]["span.failing.wall_seconds"]["count"] == 1


# -- exporters -------------------------------------------------------------------------


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        obs.counter("c").inc(3)
        obs.gauge("g").set(1.5)
        obs.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        path = obs.export_jsonl(tmp_path / "m.jsonl", run="unit")
        rows = obs.read_jsonl(path)
        by_name = {row["name"]: row for row in rows}
        assert by_name["c"]["type"] == "counter" and by_name["c"]["value"] == 3
        assert by_name["g"]["type"] == "gauge" and by_name["g"]["value"] == 1.5
        assert by_name["h"]["type"] == "histogram" and by_name["h"]["count"] == 1
        assert all(row["run"] == "unit" for row in rows)

    def test_prometheus_text_format(self):
        obs.counter("serve.requests").inc(2)
        obs.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        text = prometheus_text(obs.snapshot())
        assert "repro_serve_requests 2" in text
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_count 1" in text

    def test_prometheus_labels_attach_to_every_sample(self):
        obs.counter("serve.requests").inc(2)
        obs.gauge("g").set(1.0)
        obs.histogram("h", bounds=(1.0,)).observe(0.5)
        text = prometheus_text(obs.snapshot(), labels={"shard": "3"})
        assert 'repro_serve_requests{shard="3"} 2' in text
        assert 'repro_g{shard="3"} 1.0' in text
        assert 'repro_h_bucket{shard="3",le="1.0"} 1' in text
        assert 'repro_h_sum{shard="3"}' in text
        # TYPE headers carry no labels.
        assert "# TYPE repro_serve_requests counter" in text

    def test_prometheus_multi_series_dedupes_type_headers(self):
        from repro.obs.export import prometheus_text_multi

        shard0 = MetricsRegistry()
        shard0.counter("serve.requests").inc(4)
        shard1 = MetricsRegistry()
        shard1.counter("serve.requests").inc(6)
        shard1.counter("shard.only_here").inc(1)
        text = prometheus_text_multi(
            [
                ({"shard": "0"}, shard0.snapshot()),
                ({"shard": "1"}, shard1.snapshot()),
            ]
        )
        assert 'repro_serve_requests{shard="0"} 4' in text
        assert 'repro_serve_requests{shard="1"} 6' in text
        assert 'repro_shard_only_here{shard="1"} 1' in text
        # One TYPE declaration per metric across the whole fleet.
        assert text.count("# TYPE repro_serve_requests counter") == 1


# -- deterministic aggregation ---------------------------------------------------------

_EVENT = st.tuples(
    st.sampled_from(["counter", "gauge", "histogram"]),
    st.sampled_from(["alpha", "beta", "gamma"]),
    # quarter-integers are exact binary fractions, so per-chunk partial
    # sums add to exactly the serial total regardless of grouping
    st.integers(min_value=0, max_value=400).map(lambda n: n / 4.0),
)


def _apply(registry: MetricsRegistry, events) -> None:
    for kind, name, value in events:
        if kind == "counter":
            registry.counter(f"c.{name}").inc(int(value))
        elif kind == "gauge":
            registry.gauge(f"g.{name}").set(value)
        else:
            registry.histogram(f"h.{name}", bounds=(1.0, 10.0, 100.0)).observe(value)


class TestDeterministicAggregation:
    @settings(max_examples=60, deadline=None)
    @given(
        events=st.lists(_EVENT, max_size=60),
        data=st.data(),
    )
    def test_any_worker_split_merges_to_the_serial_result(self, events, data):
        """Chunked + merged-in-order == serial, for any contiguous split."""
        serial = MetricsRegistry()
        _apply(serial, events)

        # draw a random partition of the event sequence into chunks
        cut_points = data.draw(
            st.lists(
                st.integers(0, len(events)), unique=True, max_size=6
            ).map(sorted),
            label="cut_points",
        )
        edges = [0] + cut_points + [len(events)]
        merged = MetricsRegistry()
        for lo, hi in zip(edges, edges[1:]):
            worker = MetricsRegistry()  # what obs.collect() gives each job
            _apply(worker, events[lo:hi])
            merged.merge(worker.snapshot())

        assert merged.snapshot() == serial.snapshot()

    def test_collect_isolates_and_restores_the_registry(self):
        obs.counter("outer").inc()
        with obs.collect() as inner:
            obs.counter("inner").inc()
            assert obs.get_registry() is inner
            assert inner.counter("outer").value == 0  # fresh, not a copy
        assert obs.get_registry().counter("inner").value == 0
        obs.merge(inner.snapshot())
        assert obs.get_registry().counter("inner").value == 1


def _metric_job(n: int) -> int:
    """Module-level so the multiprocessing pool can pickle it."""
    obs.counter("job.calls").inc()
    obs.counter("job.units").inc(n)
    obs.histogram("job.sizes", obs.SIZE_BUCKETS).observe(n)
    return n * 2


class TestParallelCollection:
    def test_pool_metrics_match_serial(self):
        items = list(range(1, 9))

        serial_results = parallel.parallel_map(_metric_job, items, n_workers=1)
        serial = obs.snapshot()

        obs.reset()
        pool_results = parallel.parallel_map(
            _metric_job, items, n_workers=3, collect_metrics=True
        )
        assert pool_results == serial_results
        assert obs.snapshot() == serial

    def test_pool_without_collection_records_nothing_here(self):
        parallel.parallel_map(_metric_job, list(range(1, 9)), n_workers=3)
        assert obs.snapshot()["counters"] == {}


# -- no-op mode ------------------------------------------------------------------------


class TestNoOpMode:
    def test_disabled_accessors_return_shared_singletons(self):
        obs.configure(enabled=False)
        assert obs.counter("x") is obs.NULL_COUNTER
        assert obs.gauge("x") is obs.NULL_GAUGE
        assert obs.histogram("x") is obs.NULL_HISTOGRAM
        assert obs.span("x") is obs.NULL_SPAN

    def test_disabled_recording_leaves_registry_empty(self):
        obs.configure(enabled=False)
        obs.counter("c").inc(5)
        obs.gauge("g").set(1.0)
        obs.histogram("h").observe(0.5)
        with obs.span("p"):
            pass
        assert obs.get_registry().instruments() == []

    def test_null_span_skips_the_context_stack(self):
        obs.configure(enabled=False)
        with obs.span("invisible"):
            assert obs.current_stack() == []

    def test_disabled_merge_is_a_no_op(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(9)
        obs.configure(enabled=False)
        obs.merge(worker.snapshot())
        obs.configure(enabled=True)
        assert obs.get_registry().instruments() == []

    def test_kernel_paths_record_nothing_when_disabled(self):
        """REPRO_OBS=0 leaves the instrumented kernels instrumentation-free."""
        from repro.profiling.reuse import stack_distances
        from repro.spmv import SetAssociativeCache

        obs.configure(enabled=False)
        addrs = (np.arange(256) % 32) * 64
        SetAssociativeCache(4096, 64, 4, "LRU").simulate(addrs)
        stack_distances(addrs)
        assert obs.get_registry().instruments() == []

    def test_kernel_paths_record_when_enabled(self):
        from repro.profiling.reuse import stack_distances
        from repro.spmv import SetAssociativeCache

        addrs = (np.arange(256) % 32) * 64
        SetAssociativeCache(4096, 64, 4, "LRU").simulate(addrs)
        stack_distances(addrs)
        counters = obs.snapshot()["counters"]
        assert counters["kernel.cache_accesses"] == 256
        assert counters["kernel.stack_accesses"] == 256
        histograms = obs.snapshot()["histograms"]
        assert histograms["span.kernel.cache_sim.wall_seconds"]["count"] == 1
        assert histograms["span.kernel.stack_distances.wall_seconds"]["count"] == 1
