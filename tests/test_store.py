"""The columnar mmap store: round-trips, sharing, swizzling, crash safety.

The store's contract (DESIGN.md §9) is write-once columns published
atomically, read back as shared read-only mappings, plus a pickler that
turns store-backed views into tiny column references.  The chaos tests
drive the ``store.flush`` / ``store.open`` fault sites: a kill between
the temp-file fsync and the rename must never leave a torn column
visible, and a torn file planted on disk is quarantined, not served.
"""

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.store import (
    ColumnHandle,
    MissingColumn,
    Store,
    StoreError,
    dump_artifact,
    freeze,
    load_artifact,
    thaw,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def store(tmp_path):
    return Store(tmp_path / "store")


class TestPutGet:
    def test_round_trip_is_exact_and_mapped(self, store):
        array = np.arange(10_000, dtype=np.int64)
        store.put("traces/a", array)
        out = store.get("traces/a")
        assert isinstance(out, np.memmap)
        assert not out.flags.writeable
        assert np.array_equal(out, array)

    def test_structured_dtype_round_trip(self, store):
        dtype = np.dtype([("op", "i1"), ("addr", "i8")])
        array = np.zeros(100, dtype=dtype)
        array["addr"] = np.arange(100)
        store.put("traces/structured", array)
        assert np.array_equal(store.get("traces/structured"), array)

    def test_write_once_keeps_first_column(self, store):
        store.put("col", np.zeros(10))
        store.put("col", np.ones(10))  # no-op: key exists
        assert np.array_equal(store.get("col"), np.zeros(10))
        store.put("col", np.ones(10), overwrite=True)
        assert np.array_equal(store.get("col"), np.ones(10))

    def test_mapping_cached_per_process(self, store):
        store.put("col", np.arange(5))
        assert store.get("col") is store.get("col")

    def test_missing_column_raises(self, store):
        with pytest.raises(MissingColumn):
            store.get("no/such/column")

    def test_object_dtype_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("bad", np.array([object()]))

    @pytest.mark.parametrize("key", ["", "/abs", "../up", "a/../b", "a//b", " a"])
    def test_invalid_keys_rejected(self, store, key):
        with pytest.raises(StoreError):
            store.path_for(key)

    def test_handle_pickles_small_and_reopens(self, store):
        array = np.arange(1000)
        handle = store.put("col", array)
        blob = pickle.dumps(handle)
        assert len(blob) < 500
        revived = pickle.loads(blob)
        assert revived == handle
        assert np.array_equal(revived.array(), array)
        assert isinstance(revived.array(), np.memmap)


class TestSwizzling:
    """freeze/thaw: store-backed views cross pickling as column refs."""

    def test_column_view_round_trips_as_reference(self, store):
        array = np.arange(50_000, dtype=np.int64)
        store.put("col", array)
        column = store.get("col")
        view = column[10_000:20_000]
        frozen = freeze(("tag", view))
        assert len(frozen) < 2_000  # reference, not 80KB of data
        tag, thawed = thaw(frozen)
        assert tag == "tag"
        assert isinstance(thawed, np.memmap)
        assert np.array_equal(thawed, array[10_000:20_000])

    def test_non_store_arrays_pickle_by_value(self, store):
        array = np.arange(100)
        out = thaw(freeze(array))
        assert np.array_equal(out, array)
        assert not isinstance(out, np.memmap)

    @given(
        seed=st.integers(0, 2**31 - 1),
        a=st.integers(0, 900),
        b=st.integers(0, 900),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_contiguous_slice_swizzles_exactly(self, tmp_path_factory, seed, a, b):
        store = Store(tmp_path_factory.getbasetemp() / "swizzle-prop")
        rng = np.random.default_rng(seed)
        array = rng.integers(0, 1 << 40, size=1000)
        store.put(f"cols/{seed}", array)
        column = store.get(f"cols/{seed}")
        lo, hi = min(a, b), max(a, b)
        view = column[lo:hi]
        assert np.array_equal(thaw(freeze(view)), array[lo:hi])

    def test_structured_shard_views_swizzle(self, store):
        dtype = np.dtype([("op", "i1"), ("addr", "i8")])
        array = np.zeros(1000, dtype=dtype)
        array["addr"] = np.arange(1000)
        store.put("trace", array)
        column = store.get("trace")
        shards = [column[i * 100 : (i + 1) * 100] for i in range(10)]
        thawed = thaw(freeze(shards))
        for shard, start in zip(thawed, range(0, 1000, 100)):
            assert isinstance(shard, np.memmap)
            assert np.array_equal(shard["addr"], np.arange(start, start + 100))


class TestArtifacts:
    def test_large_arrays_spill_to_store(self, store, tmp_path):
        payload = {"big": np.arange(100_000), "meta": "hello", "small": np.arange(4)}
        path = tmp_path / "artifact.pkl"
        dump_artifact(payload, path, store=store)
        assert path.stat().st_size < 10_000  # big array lives in the store
        out = load_artifact(path)
        assert out["meta"] == "hello"
        assert np.array_equal(out["big"], payload["big"])
        assert np.array_equal(out["small"], payload["small"])

    def test_plain_pickle_still_loads(self, tmp_path):
        path = tmp_path / "legacy.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"x": np.arange(10)}, fh)
        assert np.array_equal(load_artifact(path)["x"], np.arange(10))


class TestCrashSafety:
    def _put_in_subprocess(self, root: Path, fault_spec: str):
        code = textwrap.dedent(
            """
            import numpy as np
            from repro.store import Store
            Store().put("col/crash", np.arange(5000, dtype=np.int64))
            """
        )
        env = dict(
            os.environ,
            REPRO_STORE_DIR=str(root),
            PYTHONPATH=str(REPO_ROOT / "src"),
        )
        if fault_spec:
            env["REPRO_FAULTS"] = fault_spec
        else:
            env.pop("REPRO_FAULTS", None)
        return subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True
        )

    def test_kill_at_flush_leaves_no_visible_column(self, tmp_path):
        """Killed after fsync but before rename: the column must not
        exist, and a retried put publishes it cleanly."""
        root = tmp_path / "store"
        proc = self._put_in_subprocess(root, "0:store.flush=kill@1")
        assert proc.returncode != 0
        store = Store(root)
        with pytest.raises(MissingColumn):
            store.get("col/crash")
        proc = self._put_in_subprocess(root, "")
        assert proc.returncode == 0, proc.stderr.decode()
        assert np.array_equal(
            Store(root).get("col/crash"), np.arange(5000, dtype=np.int64)
        )

    def test_torn_column_quarantined_and_rebuildable(self, store):
        store.put("col", np.arange(1000))
        path = store.path_for("col")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn mid-write
        with pytest.raises(MissingColumn):
            store.get("col")
        assert not path.exists()  # moved aside, not served
        assert list(path.parent.glob("col.npy.torn-*"))
        store.put("col", np.arange(1000))
        assert np.array_equal(store.get("col"), np.arange(1000))

    def test_open_fault_surfaces_as_store_error(self, store):
        store.put("col", np.arange(10))
        plan = faults.FaultPlan.parse("store.open=raise@1", seed=3)
        with faults.armed(plan), pytest.raises(Exception):
            store.get("col")
        assert np.array_equal(store.get("col"), np.arange(10))
