"""Cross-validation of the interval timing model against the cycle-level
out-of-order simulator.

The interval model is the reproduction's Gem5 stand-in; these tests check
that it is a faithful *approximation* of an explicit structural simulation:
same ordering of architectures, same directionally correct responses to
resources, and CPIs within a modest band.
"""

import numpy as np
import pytest

from repro.core import pearson_correlation, spearman_correlation
from repro.uarch import Simulator, config_from_levels
from repro.uarch.detailed import DetailedSimulator, detailed_cpi
from repro.workloads import application_spec, generate_trace

SHARD = 1_500


@pytest.fixture(scope="module")
def shard():
    trace = generate_trace(
        application_spec("bzip2"), SHARD, seed=6, shard_length=SHARD
    )
    return trace.shards(SHARD)[0]


# A small but diverse slice of the design space.
CONFIG_LEVELS = [
    (0, 0, 1, 1, 0, 0, 0, 4, 0, 0, 0, 0, 0),   # minimal machine
    (1, 2, 2, 2, 1, 1, 1, 2, 1, 0, 1, 0, 1),   # modest
    (2, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1),   # reference-like
    (3, 5, 3, 4, 3, 3, 4, 0, 3, 1, 2, 1, 3),   # maximal machine
    (0, 5, 0, 0, 3, 3, 4, 0, 3, 1, 2, 1, 3),   # narrow but resource-rich
    (3, 0, 3, 4, 0, 0, 0, 4, 0, 0, 0, 0, 0),   # wide but starved
]


class TestDetailedSimulator:
    def test_commits_all_instructions(self, shard):
        config = config_from_levels(CONFIG_LEVELS[2])
        result = DetailedSimulator(config).run(shard)
        assert result.instructions == len(shard)
        assert result.cycles > 0

    def test_cpi_at_least_width_bound(self, shard):
        for levels in CONFIG_LEVELS[:3]:
            config = config_from_levels(levels)
            result = DetailedSimulator(config).run(shard)
            assert result.cpi >= 1.0 / config.width - 1e-9

    def test_wider_machine_not_slower(self, shard):
        narrow = detailed_cpi(shard, config_from_levels(CONFIG_LEVELS[0]))
        wide = detailed_cpi(shard, config_from_levels(CONFIG_LEVELS[3]))
        assert wide <= narrow

    def test_larger_caches_do_not_hurt(self, shard):
        small = config_from_levels((1, 2, 2, 2, 0, 0, 0, 2, 1, 0, 1, 0, 1))
        large = config_from_levels((1, 2, 2, 2, 3, 3, 4, 2, 1, 0, 1, 0, 1))
        assert detailed_cpi(shard, large) <= detailed_cpi(shard, small) * 1.02

    def test_deterministic(self, shard):
        config = config_from_levels(CONFIG_LEVELS[1])
        assert detailed_cpi(shard, config) == detailed_cpi(shard, config)

    def test_miss_counters_consistent(self, shard):
        config = config_from_levels(CONFIG_LEVELS[1])
        sim = DetailedSimulator(config)
        result = sim.run(shard)
        assert 0 <= result.l2_misses <= result.l1d_misses + result.l1i_misses


class TestIntervalModelValidation:
    """The headline cross-check: interval vs. cycle-level CPIs."""

    @pytest.fixture(scope="class")
    def cpis(self, shard):
        interval = Simulator()
        pairs = []
        for levels in CONFIG_LEVELS:
            config = config_from_levels(levels)
            pairs.append(
                (interval.cpi(shard, config), detailed_cpi(shard, config))
            )
        return np.array(pairs)

    def test_rank_agreement(self, cpis):
        rho = spearman_correlation(cpis[:, 0], cpis[:, 1])
        assert rho > 0.75

    def test_linear_agreement(self, cpis):
        assert pearson_correlation(cpis[:, 0], cpis[:, 1]) > 0.8

    def test_magnitudes_in_band(self, cpis):
        """The interval model tracks the structural simulator within a
        modest multiplicative band across the design-space extremes."""
        ratios = cpis[:, 0] / cpis[:, 1]
        assert (ratios > 0.35).all() and (ratios < 3.0).all()
