"""Property tests: the vectorized kernels are exact replacements.

The cache simulator's numpy LRU path must reproduce the per-access
reference loop bit-for-bit (miss counts *and* final MRU state), and the
vectorized stack-distance kernel must match the Fenwick-tree oracle,
across randomized geometries and stream shapes.  Streams are built with
numpy generators from hypothesis-drawn parameters so they comfortably
exceed the fast paths' minimum-length dispatch thresholds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.reuse import (
    COLD_DISTANCE,
    stack_distances,
    stack_distances_reference,
)
from repro.spmv import SetAssociativeCache

geometries = st.tuples(
    st.sampled_from([16, 32, 64, 128]),      # line bytes
    st.sampled_from([1, 2, 4, 8, 16]),       # ways
    st.sampled_from([1, 2, 4, 16, 64]),      # sets
)

stream_shapes = st.tuples(
    st.integers(0, 2**31 - 1),               # stream seed
    st.integers(260, 800),                   # length (>= vectorize minimum)
    st.sampled_from([8, 64, 512, 4096]),     # distinct lines in the stream
    st.sampled_from([1, 2, 4, 8]),           # run length (consecutive repeats)
)


def _make_stream(seed, length, universe, run_length, line_bytes):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, universe, size=-(-length // run_length))
    return np.repeat(lines, run_length)[:length] * line_bytes


class TestCacheSimulatorEquivalence:
    @given(geometries, stream_shapes)
    @settings(max_examples=60, deadline=None)
    def test_lru_vectorized_matches_reference(self, geometry, shape):
        """Identical miss counts and identical final per-set MRU lists."""
        line_bytes, ways, n_sets = geometry
        addrs = _make_stream(*shape, line_bytes)
        size = line_bytes * ways * n_sets

        ref = SetAssociativeCache(size, line_bytes, ways, "LRU")
        fast = SetAssociativeCache(size, line_bytes, ways, "LRU")
        assert fast.simulate(addrs) == ref.simulate_reference(addrs)
        assert fast._sets == ref._sets

    @given(geometries, stream_shapes)
    @settings(max_examples=30, deadline=None)
    def test_lru_simulate_matches_access_loop(self, geometry, shape):
        line_bytes, ways, n_sets = geometry
        addrs = _make_stream(*shape, line_bytes)
        size = line_bytes * ways * n_sets

        loop = SetAssociativeCache(size, line_bytes, ways, "LRU")
        misses_loop = sum(0 if loop.access(int(a)) else 1 for a in addrs)
        batch = SetAssociativeCache(size, line_bytes, ways, "LRU")
        assert batch.simulate(addrs) == misses_loop
        assert batch._sets == loop._sets

    @given(
        st.sampled_from(["NMRU", "RND"]),
        st.integers(0, 2**31 - 1),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_randomized_policies_match_access_loop(
        self, policy, cache_seed, stream_seed
    ):
        """simulate() consumes the eviction RNG exactly like access(), so
        randomized policies agree draw-for-draw, not just statistically."""
        addrs = _make_stream(stream_seed, 400, 64, 2, 32)
        loop = SetAssociativeCache(32 * 4 * 8, 32, 4, policy, seed=cache_seed)
        misses_loop = sum(0 if loop.access(int(a)) else 1 for a in addrs)
        batch = SetAssociativeCache(32 * 4 * 8, 32, 4, policy, seed=cache_seed)
        assert batch.simulate(addrs) == misses_loop
        assert batch._sets == loop._sets

    @given(geometries, stream_shapes)
    @settings(max_examples=20, deadline=None)
    def test_warm_cache_still_exact(self, geometry, shape):
        """A second simulate() call starts warm, dispatches to the
        reference path, and must stay consistent with a single long run."""
        line_bytes, ways, n_sets = geometry
        addrs = _make_stream(*shape, line_bytes)
        size = line_bytes * ways * n_sets
        half = len(addrs) // 2

        whole = SetAssociativeCache(size, line_bytes, ways, "LRU")
        split = SetAssociativeCache(size, line_bytes, ways, "LRU")
        total = whole.simulate_reference(addrs)
        assert split.simulate(addrs[:half]) + split.simulate(addrs[half:]) == total
        assert split._sets == whole._sets


class TestStackDistanceEquivalence:
    @given(stream_shapes)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_fenwick(self, shape):
        addrs = _make_stream(*shape, 64)
        fast_d, fast_cold = stack_distances(addrs)
        ref_d, ref_cold = stack_distances_reference(addrs)
        assert fast_cold == ref_cold
        assert np.array_equal(fast_d, ref_d)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_wide_block_range(self, seed):
        """Block ids spanning more than int32 still count exactly (the
        kernel rank-compacts before its int32 working arrays)."""
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 2**52, size=300) * 64
        fast_d, fast_cold = stack_distances(addrs)
        ref_d, ref_cold = stack_distances_reference(addrs)
        assert fast_cold == ref_cold
        assert np.array_equal(fast_d, ref_d)

    @given(stream_shapes)
    @settings(max_examples=20, deadline=None)
    def test_cold_sentinel_consistent(self, shape):
        addrs = _make_stream(*shape, 64)
        d, n_cold = stack_distances(addrs)
        assert int((d == COLD_DISTANCE).sum()) == n_cold
        assert n_cold == len(np.unique(addrs // 64))
