"""Unit tests for the synthetic workload substrate."""

import numpy as np
import pytest

from repro.isa import OpClass
from repro.workloads import (
    BehaviorSpec,
    PhaseSpec,
    SPEC_APP_NAMES,
    application_spec,
    generate_trace,
    input_variant,
    optimization_variant,
    spec2006_suite,
)
from repro.workloads.behaviors import MIX_KEYS


def simple_phase(**overrides):
    params = dict(
        mix={"control": 0.1, "int_alu": 0.5, "memory": 0.4},
        taken_rate=0.5,
    )
    params.update(overrides)
    return PhaseSpec(**params)


class TestPhaseSpec:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PhaseSpec(mix={"control": 0.5, "int_alu": 0.4})

    def test_unknown_mix_key_rejected(self):
        with pytest.raises(ValueError, match="unknown mix keys"):
            PhaseSpec(mix={"control": 0.5, "vector": 0.5})

    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            simple_phase(taken_rate=1.5)
        with pytest.raises(ValueError):
            simple_phase(mispredict_rate=-0.1)

    def test_dep_mean_bounded(self):
        with pytest.raises(ValueError):
            simple_phase(dep_mean=0.5)

    def test_recurrence_interval_non_negative(self):
        with pytest.raises(ValueError):
            simple_phase(recurrence_interval=-1)

    def test_mix_vector_ordered_and_normalized(self):
        phase = simple_phase()
        vec = phase.mix_vector()
        assert len(vec) == len(MIX_KEYS)
        assert vec.sum() == pytest.approx(1.0)
        assert vec[int(OpClass.INT_ALU)] == pytest.approx(0.5)

    def test_perturbed_is_valid_and_different(self):
        rng = np.random.default_rng(0)
        base = simple_phase()
        jittered = base.perturbed(rng, 0.2)
        assert jittered.mix != base.mix
        assert sum(jittered.mix.values()) == pytest.approx(1.0)
        assert 0 <= jittered.taken_rate <= 1

    def test_perturbed_zero_scale_near_identity(self):
        rng = np.random.default_rng(0)
        base = simple_phase()
        jittered = base.perturbed(rng, 1e-9)
        assert jittered.taken_rate == pytest.approx(base.taken_rate, rel=1e-6)


class TestBehaviorSpec:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            BehaviorSpec("empty", [])

    def test_weights_positive(self):
        with pytest.raises(ValueError):
            BehaviorSpec("bad", [(simple_phase(), 0.0)])

    def test_phase_weights_normalized(self):
        spec = BehaviorSpec("s", [(simple_phase(), 2.0), (simple_phase(), 6.0)])
        assert spec.phase_weights().tolist() == [0.25, 0.75]

    def test_schedule_respects_weights(self):
        spec = BehaviorSpec("s", [(simple_phase(), 1.0), (simple_phase(), 3.0)])
        schedule = spec.phase_schedule(100)
        assert schedule.count(1) == pytest.approx(75, abs=2)

    def test_schedule_interleaves(self):
        spec = BehaviorSpec("s", [(simple_phase(), 1.0), (simple_phase(), 1.0)])
        schedule = spec.phase_schedule(10)
        # Alternating, not A A A A A B B B B B.
        assert schedule[:4] != [0, 0, 0, 0]


class TestGenerator:
    def test_deterministic(self):
        spec = application_spec("astar")
        a = generate_trace(spec, 5_000, seed=9)
        b = generate_trace(spec, 5_000, seed=9)
        assert (a.data == b.data).all()

    def test_seed_changes_trace(self):
        spec = application_spec("astar")
        a = generate_trace(spec, 5_000, seed=9)
        b = generate_trace(spec, 5_000, seed=10)
        assert not (a.data == b.data).all()

    def test_exact_length(self):
        spec = application_spec("hmmer")
        assert len(generate_trace(spec, 7_777, seed=1)) == 7_777

    def test_mix_approximates_spec(self):
        spec = BehaviorSpec("m", [(simple_phase(), 1.0)])
        trace = generate_trace(spec, 30_000, seed=2)
        counts = trace.opclass_counts()
        assert counts[OpClass.INT_ALU] / len(trace) == pytest.approx(0.5, abs=0.03)
        assert counts[OpClass.MEMORY] / len(trace) == pytest.approx(0.4, abs=0.03)

    def test_taken_rate_approximated(self):
        spec = BehaviorSpec("t", [(simple_phase(taken_rate=0.9), 1.0)])
        trace = generate_trace(spec, 30_000, seed=2)
        control = trace.control_mask()
        assert trace.taken[control].mean() == pytest.approx(0.9, abs=0.05)

    def test_memory_ops_have_addresses(self):
        spec = application_spec("astar")
        trace = generate_trace(spec, 5_000, seed=1)
        mem = trace.memory_mask()
        assert (trace.addr[mem] > 0).all()
        assert (trace.addr[~mem] == 0).all()

    def test_streaming_produces_sequential_addresses(self):
        phase = simple_phase(stream_rate=0.9, new_block_rate=0.0)
        trace = generate_trace(BehaviorSpec("s", [(phase, 1.0)]), 10_000, seed=4)
        addrs = trace.addr[trace.memory_mask()]
        deltas = np.diff(addrs)
        assert (deltas == 8).mean() > 0.5  # mostly unit-stride

    def test_recurrence_interval_sets_deps(self):
        phase = simple_phase(recurrence_interval=5)
        spec = BehaviorSpec("r", [(phase, 1.0)])
        # A single phase segment covers the trace (shard_length * phase_run
        # >= n), so the chain indices are globally aligned.
        trace = generate_trace(spec, 1_000, seed=4, shard_length=1_000)
        assert (trace.dep[5::5] == 5).all()

    def test_instruction_addresses_within_regions(self):
        spec = application_spec("hmmer")
        trace = generate_trace(spec, 5_000, seed=1)
        assert (trace.iaddr >= 0).all()

    def test_small_code_footprint_reuses_blocks(self):
        tight = simple_phase(code_blocks=4, far_jump_rate=0.0)
        trace = generate_trace(BehaviorSpec("i", [(tight, 1.0)]), 5_000, seed=5)
        blocks = np.unique(trace.iaddr >> 6)
        assert len(blocks) <= 8

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(application_spec("astar"), 0)


class TestSuite:
    def test_seven_applications(self):
        suite = spec2006_suite()
        assert tuple(suite) == SPEC_APP_NAMES
        assert len(suite) == 7

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            application_spec("gcc")

    def test_bwaves_is_fp_heavy_outlier(self):
        trace_b = generate_trace(application_spec("bwaves"), 20_000, seed=1)
        trace_s = generate_trace(application_spec("sjeng"), 20_000, seed=1)
        fp = lambda t: (
            t.opclass_counts()[OpClass.FP_ALU] + t.opclass_counts()[OpClass.FP_MULDIV]
        ) / len(t)
        assert fp(trace_b) > 3 * fp(trace_s)

    def test_bwaves_high_taken_rate(self):
        trace = generate_trace(application_spec("bwaves"), 20_000, seed=1)
        control = trace.control_mask()
        assert trace.taken[control].mean() > 0.7

    def test_optimization_variant_changes_memory_mix(self):
        base = application_spec("bzip2")
        o1 = optimization_variant(base, "-O1")
        o3 = optimization_variant(base, "-O3")
        mem = lambda s: s.phases[0][0].mix["memory"]
        assert mem(o1) > mem(base) > mem(o3)

    def test_optimization_variant_names(self):
        assert optimization_variant(application_spec("astar"), "-O1").name == "astar-O1"

    def test_optimization_variant_validates_level(self):
        with pytest.raises(ValueError):
            optimization_variant(application_spec("astar"), "-O2")

    def test_input_variant_changes_weights(self):
        base = application_spec("astar")
        v = input_variant(base, "-v2")
        assert v.name == "astar-v2"
        assert not np.allclose(v.phase_weights(), base.phase_weights())

    def test_input_variant_validates_set(self):
        with pytest.raises(ValueError):
            input_variant(application_spec("astar"), "-v9")

    def test_variants_are_deterministic(self):
        a = optimization_variant(application_spec("astar"), "-O1")
        b = optimization_variant(application_spec("astar"), "-O1")
        assert a.phases[0][0].mix == b.phases[0][0].mix


class TestRandomBehaviorSpec:
    def test_valid_and_named(self):
        from repro.workloads import random_behavior_spec

        rng = np.random.default_rng(1)
        spec = random_behavior_spec(rng, name="cover00")
        assert spec.name == "cover00"
        assert len(spec.phases) == 1
        assert sum(spec.phases[0][0].mix.values()) == pytest.approx(1.0)

    def test_generates_traces(self):
        from repro.workloads import random_behavior_spec

        rng = np.random.default_rng(2)
        spec = random_behavior_spec(rng)
        trace = generate_trace(spec, 3_000, seed=1)
        assert len(trace) == 3_000

    def test_diverse_across_draws(self):
        from repro.workloads import random_behavior_spec

        rng = np.random.default_rng(3)
        mixes = [random_behavior_spec(rng).phases[0][0].mix["memory"] for _ in range(8)]
        assert max(mixes) - min(mixes) > 0.05
