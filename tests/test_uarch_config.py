"""Unit tests for the Table 2 design space."""

import numpy as np
import pytest

from repro.uarch import (
    HARDWARE_VARIABLE_NAMES,
    config_from_levels,
    design_space_size,
    reference_config,
    sample_configs,
)
from repro.uarch.config import (
    IQ_LEVELS,
    L1_ASSOC_LEVELS,
    L2_ASSOC_LEVELS,
    LSQ_LEVELS,
    REGS_LEVELS,
    ROB_LEVELS,
    WIDTH_LEVELS,
    _LEVEL_COUNTS,
)


class TestLevels:
    def test_width_doubles(self):
        assert WIDTH_LEVELS == (1, 2, 4, 8)

    def test_window_resources_ganged_in_six_steps(self):
        assert len(LSQ_LEVELS) == len(REGS_LEVELS) == len(IQ_LEVELS) == len(ROB_LEVELS) == 6

    def test_window_resource_ranges_match_table2(self):
        assert LSQ_LEVELS[0] == 11 and LSQ_LEVELS[-1] <= 38
        assert REGS_LEVELS[0] == 86 and REGS_LEVELS[-1] <= 300
        assert IQ_LEVELS[0] == 22 and IQ_LEVELS[-1] <= 72
        assert ROB_LEVELS[0] == 64 and ROB_LEVELS[-1] <= 224

    def test_l2_assoc_ganged_to_l1(self):
        assert len(L2_ASSOC_LEVELS) == len(L1_ASSOC_LEVELS)

    def test_thirteen_parameters(self):
        assert len(_LEVEL_COUNTS) == 13
        assert len(HARDWARE_VARIABLE_NAMES) == 13


class TestConfigFromLevels:
    def test_roundtrip_levels(self):
        levels = (1, 2, 3, 4, 0, 1, 2, 3, 0, 1, 2, 0, 3)
        config = config_from_levels(levels)
        assert config.levels == levels

    def test_values_mapped(self):
        config = config_from_levels((0,) * 13)
        assert config.width == 1
        assert config.rob == 64
        assert config.lsq == 11
        assert config.dcache_kb == 16
        assert config.l2_kb == 256

    def test_extreme_design(self):
        maxed = tuple(c - 1 for c in _LEVEL_COUNTS)
        config = config_from_levels(maxed)
        assert config.width == 8
        assert config.rob == 224
        assert config.l2_kb == 4096

    def test_window_resources_move_together(self):
        small = config_from_levels((0,) * 13)
        big = config_from_levels((0, 5) + (0,) * 11)
        assert big.lsq > small.lsq
        assert big.registers > small.registers
        assert big.iq > small.iq
        assert big.rob > small.rob

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            config_from_levels((0,) * 12)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            config_from_levels((9,) + (0,) * 12)

    def test_as_vector_order(self):
        config = reference_config()
        vec = config.as_vector()
        assert len(vec) == 13
        assert vec[0] == config.width
        assert vec[1] == config.rob
        assert vec[4] == config.dcache_kb

    def test_key_stable(self):
        a = config_from_levels((1,) * 13)
        b = config_from_levels((1,) * 13)
        assert a.key == b.key


class TestSampling:
    def test_design_space_size(self):
        assert design_space_size() == int(np.prod(_LEVEL_COUNTS))
        assert design_space_size() > 10**6

    def test_sample_distinct(self, rng):
        configs = sample_configs(50, rng)
        assert len({c.key for c in configs}) == 50

    def test_sample_reproducible(self):
        a = sample_configs(10, np.random.default_rng(5))
        b = sample_configs(10, np.random.default_rng(5))
        assert [c.key for c in a] == [c.key for c in b]

    def test_sample_positive(self, rng):
        with pytest.raises(ValueError):
            sample_configs(0, rng)

    def test_samples_cover_extremes_eventually(self, rng):
        configs = sample_configs(300, rng)
        widths = {c.width for c in configs}
        assert widths == set(WIDTH_LEVELS)
