"""Unit and property tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import CacheConfig, SetAssociativeCache, default_cache
from repro.spmv.cache import sample_cache_configs, SPMV_HARDWARE_NAMES

address_streams = st.lists(st.integers(0, 200), min_size=1, max_size=300).map(
    lambda blocks: [b * 16 for b in blocks]
)


class TestCacheConfig:
    def test_levels_validated(self):
        with pytest.raises(ValueError):
            CacheConfig(48, 16, 2, "LRU", 8, 2, "LRU")
        with pytest.raises(ValueError):
            CacheConfig(32, 16, 2, "FIFO", 8, 2, "LRU")
        with pytest.raises(ValueError):
            CacheConfig(32, 3, 2, "LRU", 8, 2, "LRU")

    def test_vector_encoding(self):
        config = CacheConfig(32, 16, 2, "NMRU", 8, 2, "RND")
        vec = config.as_vector()
        assert len(vec) == len(SPMV_HARDWARE_NAMES) == 7
        assert vec[3] == 1.0  # NMRU index
        assert vec[6] == 2.0  # RND index

    def test_key_unique(self, rng):
        configs = sample_cache_configs(40, rng)
        assert len({c.key for c in configs}) == 40

    def test_default_is_valid(self):
        assert default_cache().line_bytes in (16, 32, 64, 128)


class TestSetAssociativeCache:
    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 32, 2)  # not a multiple
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 32, 2)

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 32, 2)
        assert cache.access(0) is False
        assert cache.access(8) is True  # same line

    def test_capacity_eviction_lru(self):
        # 2 sets x 1 way, 32B lines: lines 0 and 2 map to set 0.
        cache = SetAssociativeCache(64, 32, 1)
        assert cache.access(0) is False
        assert cache.access(64) is False   # evicts line 0 (same set)
        assert cache.access(0) is False    # miss again

    def test_lru_order(self):
        # 1 set x 2 ways.
        cache = SetAssociativeCache(64, 32, 2, "LRU")
        for addr in (0, 32):          # lines a, b: cache = [b, a]
            cache.access(addr)
        cache.access(0)               # touch a: cache = [a, b]
        cache.access(64)              # insert c: evicts b
        assert cache.access(0) is True
        assert cache.access(32) is False

    def test_simulate_counts_match_access(self):
        addrs = [0, 32, 0, 64, 96, 0]
        a = SetAssociativeCache(64, 32, 2, "LRU")
        misses_loop = sum(0 if a.access(x) else 1 for x in addrs)
        b = SetAssociativeCache(64, 32, 2, "LRU")
        assert b.simulate(addrs) == misses_loop

    def test_reset(self):
        cache = SetAssociativeCache(1024, 32, 2)
        cache.access(0)
        cache.reset()
        assert cache.access(0) is False

    @given(address_streams)
    @settings(max_examples=50, deadline=None)
    def test_misses_bounded(self, addrs):
        cache = SetAssociativeCache(512, 16, 2, "LRU")
        misses = cache.simulate(addrs)
        distinct_lines = len({a // 16 for a in addrs})
        assert distinct_lines <= misses <= len(addrs) or misses <= len(addrs)
        assert misses >= 0

    @given(address_streams)
    @settings(max_examples=50, deadline=None)
    def test_lru_inclusion_property(self, addrs):
        """More ways at the same set count never increase LRU misses."""
        small = SetAssociativeCache(16 * 8 * 2, 16, 2, "LRU")   # 8 sets, 2 ways
        large = SetAssociativeCache(16 * 8 * 4, 16, 4, "LRU")   # 8 sets, 4 ways
        assert large.simulate(addrs) <= small.simulate(addrs)

    @given(address_streams)
    @settings(max_examples=50, deadline=None)
    def test_fully_associative_lru_matches_stack_distance(self, addrs):
        """Cross-validation between the two cache models in the repo: the
        simulator's fully associative LRU misses equal the stack-distance
        count from the profiling package."""
        from repro.profiling import stack_distances

        capacity_lines = 8
        cache = SetAssociativeCache(16 * capacity_lines, 16, capacity_lines, "LRU")
        misses = cache.simulate(addrs)
        distances, _ = stack_distances(np.array(addrs, dtype=np.int64), 16)
        expected = int((distances >= capacity_lines).sum())
        assert misses == expected

    @given(address_streams, st.sampled_from(["NMRU", "RND"]))
    @settings(max_examples=40, deadline=None)
    def test_randomized_policies_valid(self, addrs, policy):
        cache = SetAssociativeCache(256, 16, 4, policy, seed=1)
        misses = cache.simulate(addrs)
        distinct = len({a // 16 for a in addrs})
        assert distinct <= misses + 1 or misses <= len(addrs)
        assert 0 <= misses <= len(addrs)

    def test_policies_deterministic_by_seed(self):
        addrs = list(range(0, 4096, 16)) * 3
        a = SetAssociativeCache(256, 16, 4, "RND", seed=9).simulate(addrs)
        b = SetAssociativeCache(256, 16, 4, "RND", seed=9).simulate(addrs)
        assert a == b

    def test_nmru_protects_mru(self):
        """NMRU never evicts the most recently used line."""
        cache = SetAssociativeCache(64, 32, 2, "NMRU", seed=0)
        cache.access(0)     # line a
        cache.access(64)    # line b (same set), MRU = b
        cache.access(128)   # insert c: must evict a (the non-MRU)
        assert cache.access(64) is True

    def test_streaming_misses_scale_with_line_size(self):
        """The Figure 13 effect: for a streaming access pattern, larger
        lines mean fewer misses."""
        addrs = list(range(0, 8192, 8))  # unit-stride doubles
        misses = {
            line: SetAssociativeCache(4096, line, 2, "LRU").simulate(addrs)
            for line in (16, 32, 64, 128)
        }
        assert misses[16] > misses[32] > misses[64] > misses[128]
