"""Unit tests for profile datasets."""

import numpy as np
import pytest

from repro.core import ProfileDataset, ProfileRecord


def record(app="a", x=(1.0, 2.0), y=(3.0,), z=1.0):
    return ProfileRecord(app, np.array(x), np.array(y), z)


class TestProfileRecord:
    def test_coerces_arrays(self):
        r = ProfileRecord("a", [1, 2], [3], 1.0)
        assert r.x.dtype == float

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ProfileRecord("a", [np.nan], [1], 1.0)
        with pytest.raises(ValueError):
            ProfileRecord("a", [1], [1], float("inf"))


class TestProfileDataset:
    def test_variable_names_combined(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        assert ds.variable_names == ("x1", "x2", "y1")

    def test_overlapping_names_rejected(self):
        with pytest.raises(ValueError):
            ProfileDataset(("a",), ("a",))

    def test_add_validates_lengths(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        with pytest.raises(ValueError):
            ds.add(record(x=(1.0,)))
        with pytest.raises(ValueError):
            ds.add(record(y=(1.0, 2.0)))

    def test_matrix_layout(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        ds.add(record(x=(1, 2), y=(3,)))
        assert ds.matrix().tolist() == [[1.0, 2.0, 3.0]]

    def test_empty_matrix_shape(self):
        ds = ProfileDataset(("x1",), ("y1",))
        assert ds.matrix().shape == (0, 2)

    def test_targets_and_labels(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        ds.add(record("a", z=1.5))
        ds.add(record("b", z=2.5))
        assert ds.targets().tolist() == [1.5, 2.5]
        assert ds.labels().tolist() == ["a", "b"]

    def test_applications_in_order(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for app in ("c", "a", "c", "b"):
            ds.add(record(app))
        assert ds.applications == ("c", "a", "b")

    def test_by_application(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for app in ("a", "b", "a"):
            ds.add(record(app))
        groups = ds.by_application()
        assert len(groups["a"]) == 2
        assert len(groups["b"]) == 1

    def test_without_application(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for app in ("a", "b", "a"):
            ds.add(record(app))
        rest = ds.without_application("a")
        assert rest.applications == ("b",)
        assert len(rest) == 1

    def test_only_application(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for app in ("a", "b"):
            ds.add(record(app))
        assert len(ds.only_application("b")) == 1

    def test_split_partitions(self, rng):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for i in range(20):
            ds.add(record("a", z=float(i + 1)))
        train, val = ds.split(0.75, rng)
        assert len(train) + len(val) == 20
        assert len(train) == 15

    def test_split_stratified_keeps_all_apps(self, rng):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for app, n in (("a", 10), ("b", 4)):
            for _ in range(n):
                ds.add(record(app))
        train, val = ds.split(0.5, rng)
        assert set(train.applications) == {"a", "b"}
        assert set(val.applications) == {"a", "b"}

    def test_split_fraction_validated(self, rng):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        ds.add(record())
        with pytest.raises(ValueError):
            ds.split(0.0, rng)

    def test_merge(self):
        a = ProfileDataset(("x1", "x2"), ("y1",))
        b = ProfileDataset(("x1", "x2"), ("y1",))
        a.add(record("a"))
        b.add(record("b"))
        merged = ProfileDataset.merge([a, b])
        assert len(merged) == 2

    def test_merge_requires_same_variables(self):
        a = ProfileDataset(("x1", "x2"), ("y1",))
        b = ProfileDataset(("x1", "x2"), ("y2",))
        with pytest.raises(ValueError):
            ProfileDataset.merge([a, b])

    def test_subset_preserves_order(self):
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        for i in range(5):
            ds.add(record("a", z=float(i)))
        sub = ds.subset([1, 3])
        assert sub.targets().tolist() == [1.0, 3.0]
