"""Unit and property tests for the cache-miss and interval timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass, Trace, empty_trace
from repro.uarch import (
    Simulator,
    compute_shard_stats,
    config_from_levels,
    cycle_breakdown,
    expected_misses,
    miss_counts_hierarchy,
    reference_config,
    simulate_cpi,
)
from repro.uarch.cachemodel import _binom_sf
from repro.uarch.shardstats import COLD


class TestBinomialSurvival:
    @given(st.integers(1, 8), st.integers(0, 500), st.floats(0.001, 0.6))
    @settings(max_examples=80, deadline=None)
    def test_matches_exact_summation(self, k, n, p):
        from math import comb

        got = float(_binom_sf(k, np.array([n]), p)[0])
        exact = sum(comb(n, j) * p**j * (1 - p) ** (n - j) for j in range(k, n + 1))
        assert got == pytest.approx(exact, abs=1e-6)

    def test_k_zero_is_one(self):
        assert _binom_sf(0, np.array([5]), 0.1)[0] == 1.0

    def test_bounded(self):
        values = _binom_sf(3, np.arange(0, 1000), 0.01)
        assert ((0 <= values) & (values <= 1)).all()


class TestExpectedMisses:
    def test_cold_accesses_always_miss(self):
        stack = np.sort(np.array([COLD, COLD, COLD]))
        assert expected_misses(stack, 1024, 8) == 3.0

    def test_fully_associative_exact(self):
        stack = np.sort(np.array([0, 1, 5, 9, COLD]))
        # Capacity 6 blocks, fully associative: misses = distances >= 6 + cold.
        assert expected_misses(stack, 6, 6) == 2.0

    def test_zero_distance_always_hits(self):
        stack = np.zeros(10, dtype=np.int64)
        assert expected_misses(stack, 64, 2) == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            expected_misses(np.array([1]), 0, 1)
        with pytest.raises(ValueError):
            expected_misses(np.array([1]), 64, 0)

    def test_empty_stream(self):
        assert expected_misses(np.array([], dtype=np.int64), 64, 2) == 0.0

    @given(
        st.lists(st.integers(0, 400), min_size=1, max_size=200),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_larger_cache_never_worse(self, distances, assoc):
        stack = np.sort(np.array(distances, dtype=np.int64))
        misses = [
            expected_misses(stack, capacity, assoc)
            for capacity in (16, 64, 256, 1024)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(misses, misses[1:]))

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_higher_associativity_never_worse_below_capacity(self, distances):
        """For accesses whose stack distance fits in the cache, more ways
        (fewer sets) at the same capacity reduce expected conflict misses.
        (Above capacity the property genuinely fails: a set-associative
        cache can hit where fully-associative LRU must miss.)"""
        stack = np.sort(np.array(distances, dtype=np.int64))
        misses = [expected_misses(stack, 256, a) for a in (1, 2, 4, 8)]
        assert all(a >= b - 1e-6 for a, b in zip(misses, misses[1:]))

    def test_hierarchy_l2_not_more_than_l1(self):
        stack = np.sort(np.array([0, 3, 10, 100, 5000, COLD]))
        l1, l2 = miss_counts_hierarchy(stack, 64, 2, 4096, 8)
        assert l2 <= l1


def _make_shard(n=400, mem_rate=0.3, mispredicts=5, seed=0):
    rng = np.random.default_rng(seed)
    data = empty_trace(n)
    data["op"] = rng.choice(
        [int(OpClass.INT_ALU), int(OpClass.MEMORY), int(OpClass.CONTROL)],
        size=n,
        p=[1 - mem_rate - 0.1, mem_rate, 0.1],
    )
    control = np.flatnonzero(data["op"] == int(OpClass.CONTROL))
    data["miss"][control[:mispredicts]] = True
    mem = data["op"] == int(OpClass.MEMORY)
    data["addr"][mem] = rng.integers(0, 2000, size=int(mem.sum())) * 64
    data["iaddr"] = (np.arange(n) * 4) % 4096
    data["dep"] = rng.integers(0, 6, size=n)
    return Trace(data, f"shard-{seed}-{n}-{mem_rate}-{mispredicts}")


class TestShardStats:
    def test_counts(self):
        shard = _make_shard()
        stats = compute_shard_stats(shard)
        assert stats.n == len(shard)
        assert stats.opclass_counts.sum() == len(shard)
        assert stats.mispredicts == 5

    def test_dataflow_covers_all_rob_levels(self):
        from repro.uarch.config import ROB_LEVELS

        stats = compute_shard_stats(_make_shard())
        assert set(stats.dataflow_cycles) == set(ROB_LEVELS)

    def test_dataflow_monotone_in_window(self):
        """A larger reorder buffer can only shorten the dataflow schedule."""
        stats = compute_shard_stats(_make_shard(n=600, seed=3))
        cycles = [stats.dataflow_cycles[rob] for rob in sorted(stats.dataflow_cycles)]
        assert all(a >= b - 1e-9 for a, b in zip(cycles, cycles[1:]))

    def test_dataflow_at_least_critical_latency(self):
        stats = compute_shard_stats(_make_shard())
        assert min(stats.dataflow_cycles.values()) >= 1.0

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError):
            compute_shard_stats(Trace(empty_trace(0)))


class TestTimingModel:
    def test_cpi_positive(self):
        stats = compute_shard_stats(_make_shard())
        assert simulate_cpi(stats, reference_config()) > 0

    def test_breakdown_sums_to_total(self):
        stats = compute_shard_stats(_make_shard())
        bd = cycle_breakdown(stats, reference_config())
        assert bd.total == pytest.approx(
            bd.core + bd.branch + bd.data_memory + bd.inst_memory
        )

    def test_wider_machine_not_slower_on_core(self):
        stats = compute_shard_stats(_make_shard())
        narrow = config_from_levels((0, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
        wide = config_from_levels((3, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
        assert cycle_breakdown(stats, wide).core <= cycle_breakdown(stats, narrow).core

    def test_wider_machine_pays_more_per_mispredict(self):
        stats = compute_shard_stats(_make_shard(mispredicts=20))
        narrow = config_from_levels((0, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
        wide = config_from_levels((3, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
        assert cycle_breakdown(stats, wide).branch > cycle_breakdown(stats, narrow).branch

    def test_bigger_dcache_reduces_data_stalls(self):
        stats = compute_shard_stats(_make_shard(n=2000, mem_rate=0.4, seed=7))
        small = config_from_levels((1, 3, 2, 2, 0, 2, 2, 2, 2, 1, 1, 1, 1))
        large = config_from_levels((1, 3, 2, 2, 3, 2, 2, 2, 2, 1, 1, 1, 1))
        assert (
            cycle_breakdown(stats, large).data_memory
            <= cycle_breakdown(stats, small).data_memory
        )

    def test_more_mshrs_reduce_data_stalls(self):
        stats = compute_shard_stats(_make_shard(n=2000, mem_rate=0.4, seed=7))
        one = config_from_levels((1, 5, 2, 0, 1, 2, 2, 2, 2, 1, 1, 1, 1))
        eight = config_from_levels((1, 5, 2, 4, 1, 2, 2, 2, 2, 1, 1, 1, 1))
        assert (
            cycle_breakdown(stats, eight).data_memory
            <= cycle_breakdown(stats, one).data_memory
        )

    def test_lower_l2_latency_reduces_stalls(self):
        stats = compute_shard_stats(_make_shard(n=2000, mem_rate=0.4, seed=7))
        fast = config_from_levels((1, 3, 2, 2, 0, 2, 2, 0, 2, 1, 1, 1, 1))
        slow = config_from_levels((1, 3, 2, 2, 0, 2, 2, 4, 2, 1, 1, 1, 1))
        assert (
            cycle_breakdown(stats, fast).data_memory
            <= cycle_breakdown(stats, slow).data_memory
        )

    def test_fu_contention_binds_fp_heavy_code(self):
        data = empty_trace(1000)
        data["op"] = int(OpClass.FP_MULDIV)
        data["dep"] = 0
        stats = compute_shard_stats(Trace(data, "fp"))
        one_unit = config_from_levels((3, 5, 2, 2, 2, 2, 2, 2, 2, 1, 1, 0, 1))
        two_units = config_from_levels((3, 5, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
        assert (
            cycle_breakdown(stats, two_units).core
            < cycle_breakdown(stats, one_unit).core
        )

    def test_deterministic(self):
        stats = compute_shard_stats(_make_shard())
        config = reference_config()
        assert simulate_cpi(stats, config) == simulate_cpi(stats, config)


class TestSimulator:
    def test_stats_cached_by_name(self, astar_trace):
        sim = Simulator()
        shard = astar_trace.shards(2_000)[0]
        a = sim.stats_for(shard)
        b = sim.stats_for(shard)
        assert a is b

    def test_cpi_matrix_shape(self, astar_trace, rng):
        from repro.uarch import sample_configs

        sim = Simulator()
        shards = astar_trace.shards(2_000)[:3]
        configs = sample_configs(4, rng)
        matrix = sim.cpi_matrix(shards, configs)
        assert matrix.shape == (3, 4)
        assert (matrix > 0).all()

    def test_application_cpi_is_mean(self, astar_trace):
        sim = Simulator()
        shards = astar_trace.shards(2_000)[:3]
        config = reference_config()
        expected = np.mean([sim.cpi(s, config) for s in shards])
        assert sim.application_cpi(shards, config) == pytest.approx(expected)

    def test_application_cpi_needs_shards(self):
        with pytest.raises(ValueError):
            Simulator().application_cpi([], reference_config())
