"""Schema-version and checksum validation of serialized models."""

import json

import numpy as np
import pytest

from repro.core import (
    InferredModel,
    ModelFormatError,
    ModelSpec,
    SCHEMA_VERSION,
    TransformKind,
    load_model,
    model_from_dict,
    model_to_dict,
    payload_checksum,
    save_model,
)

from tests.conftest import make_synthetic_dataset


@pytest.fixture(scope="module")
def fitted():
    ds = make_synthetic_dataset()
    spec = ModelSpec(
        transforms={
            "x1": TransformKind.LINEAR,
            "x2": TransformKind.QUADRATIC,
            "y1": TransformKind.LINEAR,
            "y2": TransformKind.EXCLUDED,
        },
        interactions=frozenset({("x1", "y1")}),
    )
    return ds, InferredModel.fit(spec, ds)


class TestEnvelope:
    def test_payload_carries_schema_and_checksum(self, fitted):
        _, model = fitted
        payload = model_to_dict(model)
        assert payload["schema_version"] == SCHEMA_VERSION
        body = {
            k: v
            for k, v in payload.items()
            if k not in ("schema_version", "checksum")
        }
        assert payload["checksum"] == payload_checksum(body)

    def test_roundtrip_still_identical(self, fitted):
        ds, model = fitted
        clone = model_from_dict(model_to_dict(model))
        assert (clone.predict(ds) == model.predict(ds)).all()

    def test_legacy_v1_payload_loads(self, fitted):
        ds, model = fitted
        payload = model_to_dict(model)
        del payload["schema_version"]
        del payload["checksum"]
        payload["format"] = 1
        clone = model_from_dict(payload)
        assert np.allclose(clone.predict(ds), model.predict(ds))


class TestRejection:
    def test_checksum_mismatch(self, fitted):
        _, model = fitted
        payload = model_to_dict(model)
        payload["fit"]["intercept"] += 1e-3  # bit rot
        with pytest.raises(ModelFormatError, match="checksum mismatch"):
            model_from_dict(payload)

    def test_unknown_schema_version(self, fitted):
        _, model = fitted
        payload = model_to_dict(model)
        payload["schema_version"] = 999
        with pytest.raises(ModelFormatError, match="unsupported model schema"):
            model_from_dict(payload)

    def test_missing_version_markers(self):
        with pytest.raises(ModelFormatError, match="no schema_version"):
            model_from_dict({"spec": {}})

    def test_non_dict_payload(self):
        with pytest.raises(ModelFormatError, match="expected a payload dict"):
            model_from_dict([1, 2, 3])

    def test_structurally_broken_payload_is_not_a_keyerror(self, fitted):
        """The registry depends on a clear error, not an opaque KeyError."""
        _, model = fitted
        payload = model_to_dict(model)
        del payload["spec"]
        body = {
            k: v
            for k, v in payload.items()
            if k not in ("schema_version", "checksum")
        }
        payload["checksum"] = payload_checksum(body)  # re-seal
        with pytest.raises(ModelFormatError, match="malformed model payload"):
            model_from_dict(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{not json")
        with pytest.raises(ModelFormatError, match="not valid JSON"):
            load_model(path)

    def test_truncated_file(self, fitted, tmp_path):
        _, model = fitted
        path = tmp_path / "model.json"
        save_model(model, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ModelFormatError):
            load_model(path)

    def test_corrupted_file_checksum(self, fitted, tmp_path):
        _, model = fitted
        path = tmp_path / "model.json"
        save_model(model, path)
        payload = json.loads(path.read_text())
        payload["response"] = "identity" if payload["response"] != "identity" else "log"
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelFormatError, match="checksum mismatch"):
            load_model(path)
