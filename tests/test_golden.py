"""Golden-value regression tests.

These pin concrete end-to-end numbers produced by the current model
constants and seeded generators.  They are *stability* tests: a failure
does not mean the new value is wrong, it means behaviour changed — check
whether the change was intended, re-derive the constants, and bump the
cache version strings in ``repro.experiments`` (cached artifacts embed
simulated values).
"""

import numpy as np
import pytest

from repro.profiling import profile_shard
from repro.spmv import SparseMatrix, default_cache, run_spmv, to_bcsr
from repro.uarch import Simulator, reference_config
from repro.workloads import application_spec, generate_trace


@pytest.fixture(scope="module")
def astar_shard():
    trace = generate_trace(
        application_spec("astar"), 10_000, seed=42, shard_length=10_000
    )
    return trace.shards(10_000)[0]


class TestGeneralStudyGolden:
    def test_reference_cpi(self, astar_shard):
        cpi = Simulator().cpi(astar_shard, reference_config())
        assert cpi == pytest.approx(0.9287689360241879, rel=1e-9)

    def test_instruction_mix_counts(self, astar_shard):
        x = profile_shard(astar_shard)
        # x1..x7 are integer counts; exact.
        assert x[:7].tolist() == [1405.0, 730.0, 430.0, 96.0, 103.0, 3801.0, 4165.0]

    def test_locality_and_ilp_characteristics(self, astar_shard):
        x = profile_shard(astar_shard)
        assert x[7] == pytest.approx(222.15543, abs=1e-4)   # x8 data re-use
        assert x[8] == pytest.approx(5.500501, abs=1e-5)    # x9 inst re-use
        assert x[12] == pytest.approx(7.117438, abs=1e-5)   # x13 basic block


class TestSpMVGolden:
    def test_figure11_matrix_on_default_cache(self):
        dense = np.array(
            [
                [1, 2, 0, 0, 0, 0],
                [3, 4, 0, 0, 5, 6],
                [0, 0, 7, 0, 8, 9],
                [0, 0, 0, 10, 11, 12],
            ],
            dtype=float,
        )
        result = run_spmv(to_bcsr(SparseMatrix.from_dense(dense), 2, 2), default_cache())
        assert result.cycles == pytest.approx(1276.0)
        assert result.mflops == pytest.approx(7.523510971786834, rel=1e-9)
        assert result.nj_per_flop == pytest.approx(15.93373766765758, rel=1e-9)
