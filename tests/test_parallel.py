"""Unit tests for the deterministic parallelism helpers."""

import multiprocessing

import pytest

from repro.parallel import (
    WORKERS_ENV,
    chunk_seeds,
    parallel_map,
    parallel_starmap,
    resolve_workers,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == multiprocessing.cpu_count()
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == multiprocessing.cpu_count()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2

    def test_minimum_one(self):
        assert resolve_workers(-4) == 1

    def test_junk_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers()


class TestChunkSeeds:
    def test_deterministic(self):
        assert chunk_seeds(42, 8) == chunk_seeds(42, 8)

    def test_distinct_within_and_across_bases(self):
        seeds = chunk_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert set(seeds).isdisjoint(chunk_seeds(1, 16))

    def test_prefix_stable(self):
        """Growing n extends the seed list without changing the prefix."""
        assert chunk_seeds(7, 12)[:4] == chunk_seeds(7, 4)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_pool_preserves_order(self):
        items = list(range(40))
        assert parallel_map(_square, items, n_workers=2) == [
            x * x for x in items
        ]

    def test_empty(self):
        assert parallel_map(_square, [], n_workers=2) == []

    def test_single_item_skips_pool(self):
        # A lambda is unpicklable, so this passes only on the serial path.
        assert parallel_map(lambda x: x + 1, [5], n_workers=4) == [6]

    def test_starmap_matches_serial(self):
        jobs = [(i, i + 1) for i in range(20)]
        serial = parallel_starmap(_add, jobs, n_workers=1)
        pooled = parallel_starmap(_add, jobs, n_workers=2)
        assert serial == pooled == [a + b for a, b in jobs]
