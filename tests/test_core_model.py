"""Unit tests for the InferredModel facade."""

import numpy as np
import pytest

from repro.core import (
    InferredModel,
    ModelSpec,
    ProfileDataset,
    ProfileRecord,
    TransformKind,
)
from tests.conftest import make_synthetic_dataset


def full_spec(ds, kind=TransformKind.LINEAR, interactions=()):
    transforms = {name: kind for name in ds.variable_names}
    return ModelSpec(transforms=transforms, interactions=frozenset(interactions))


class TestFit:
    def test_fits_and_predicts(self, synthetic_dataset):
        spec = full_spec(synthetic_dataset, interactions=[("x1", "y1")])
        model = InferredModel.fit(spec, synthetic_dataset)
        predictions = model.predict(synthetic_dataset)
        assert predictions.shape == (len(synthetic_dataset),)
        assert np.isfinite(predictions).all()

    def test_log_response_learns_multiplicative_target(self):
        """The synthetic target is exp(linear/4): log response nails it."""
        ds = make_synthetic_dataset(noise=0.001)
        spec = full_spec(ds, interactions=[("x1", "y1")])
        model = InferredModel.fit(spec, ds, response="log")
        score = model.score(ds)
        assert score["median_error"] < 0.01
        assert score["correlation"] > 0.999

    def test_identity_response(self, synthetic_dataset):
        spec = full_spec(synthetic_dataset)
        model = InferredModel.fit(spec, synthetic_dataset, response="identity")
        assert np.isfinite(model.predict(synthetic_dataset)).all()

    def test_invalid_response_rejected(self, synthetic_dataset):
        with pytest.raises(ValueError):
            InferredModel.fit(
                full_spec(synthetic_dataset), synthetic_dataset, response="cube"
            )

    def test_log_requires_positive_targets(self):
        ds = ProfileDataset(("x1",), ("y1",))
        ds.add(ProfileRecord("a", [1.0], [1.0], -1.0))
        ds.add(ProfileRecord("a", [2.0], [2.0], 1.0))
        with pytest.raises(ValueError):
            InferredModel.fit(
                ModelSpec(transforms={"x1": TransformKind.LINEAR,
                                      "y1": TransformKind.LINEAR}),
                ds,
            )

    def test_intercept_only_model_allowed(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                name: TransformKind.EXCLUDED
                for name in synthetic_dataset.variable_names
            }
        )
        model = InferredModel.fit(spec, synthetic_dataset)
        predictions = model.predict(synthetic_dataset)
        # Intercept-only on a log scale: the geometric mean.
        assert np.allclose(predictions, predictions[0])

    def test_collinear_design_survives(self):
        """Duplicated variables in the spec (same values) are pruned, not
        fatal — the §3.1 requirement."""
        ds = ProfileDataset(("x1", "x2"), ("y1",))
        rng = np.random.default_rng(0)
        for _ in range(30):
            v = rng.normal()
            ds.add(ProfileRecord("a", [v, v], [rng.normal()], float(np.exp(v / 3))))
        spec = ModelSpec(
            transforms={
                "x1": TransformKind.LINEAR,
                "x2": TransformKind.LINEAR,  # identical to x1
                "y1": TransformKind.LINEAR,
            }
        )
        model = InferredModel.fit(spec, ds)
        assert model.n_terms < 3  # one of the twins was dropped
        assert np.isfinite(model.predict(ds)).all()

    def test_weighted_fit_biases_model(self):
        ds = make_synthetic_dataset(apps=("a", "b"), n_per_app=30, seed=5)
        spec = full_spec(ds)
        weights = np.array(
            [100.0 if r.application == "a" else 1.0 for r in ds.records]
        )
        model_a = InferredModel.fit(spec, ds, weights=weights)
        only_a = ds.only_application("a")
        plain = InferredModel.fit(spec, ds)
        assert (
            model_a.score(only_a)["median_error"]
            <= plain.score(only_a)["median_error"] + 1e-9
        )


class TestPredict:
    def test_predict_one(self, synthetic_dataset):
        model = InferredModel.fit(full_spec(synthetic_dataset), synthetic_dataset)
        r = synthetic_dataset.records[0]
        batch = model.predict(synthetic_dataset)[0]
        single = model.predict_one(r.x, r.y)
        assert single == pytest.approx(batch)

    def test_predict_one_validates_lengths(self, synthetic_dataset):
        model = InferredModel.fit(full_spec(synthetic_dataset), synthetic_dataset)
        with pytest.raises(ValueError):
            model.predict_one(np.array([1.0]), np.array([1.0]))

    def test_extreme_extrapolation_clipped(self, synthetic_dataset):
        model = InferredModel.fit(full_spec(synthetic_dataset), synthetic_dataset)
        value = model.predict_one(
            np.array([1e9, -1e9]), np.array([1e9, 1e9])
        )
        assert np.isfinite(value)


class TestPredictRows:
    """predict_rows: the serving hot path must match predict exactly."""

    def _model(self, ds, **kwargs):
        spec = full_spec(ds, interactions=[("x1", "y1")], **kwargs)
        return InferredModel.fit(spec, ds)

    def test_bit_identical_to_predict(self, synthetic_dataset):
        model = self._model(synthetic_dataset)
        rows = synthetic_dataset.matrix()
        assert (
            model.predict_rows(rows) == model.predict(synthetic_dataset)
        ).all()

    def test_bit_identical_with_spline_and_cubic(self):
        ds = make_synthetic_dataset(n_per_app=60, nonlinear=True)
        spec = ModelSpec(
            transforms={
                "x1": TransformKind.SPLINE,
                "x2": TransformKind.CUBIC,
                "y1": TransformKind.QUADRATIC,
                "y2": TransformKind.LINEAR,
            },
            interactions=frozenset({("x2", "y2")}),
        )
        model = InferredModel.fit(spec, ds)
        assert (model.predict_rows(ds.matrix()) == model.predict(ds)).all()

    def test_single_row_matches_batch_row(self, synthetic_dataset):
        """Batch-size invariance: row i of a batch == that row alone."""
        model = self._model(synthetic_dataset)
        rows = synthetic_dataset.matrix()[:16]
        batch = model.predict_rows(rows)
        singles = np.array(
            [model.predict_rows(rows[i : i + 1])[0] for i in range(len(rows))]
        )
        assert (batch == singles).all()

    def test_matches_predict_one(self, synthetic_dataset):
        model = self._model(synthetic_dataset)
        r = synthetic_dataset.records[3]
        row = np.concatenate([r.x, r.y])
        assert model.predict_rows(row[None, :])[0] == model.predict_one(r.x, r.y)

    def test_one_dimensional_input_promoted(self, synthetic_dataset):
        model = self._model(synthetic_dataset)
        row = synthetic_dataset.matrix()[0]
        assert model.predict_rows(row).shape == (1,)

    def test_wrong_width_rejected(self, synthetic_dataset):
        model = self._model(synthetic_dataset)
        with pytest.raises(ValueError, match="feature matrix"):
            model.predict_rows(np.ones((3, 7)))

    def test_variable_names_exposed(self, synthetic_dataset):
        model = self._model(synthetic_dataset)
        assert model.variable_names == synthetic_dataset.variable_names


class TestIntrospection:
    def test_transform_summary_buckets(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                "x1": TransformKind.LINEAR,
                "x2": TransformKind.EXCLUDED,
                "y1": TransformKind.SPLINE,
                "y2": TransformKind.QUADRATIC,
            }
        )
        model = InferredModel.fit(spec, synthetic_dataset)
        summary = model.transform_summary()
        assert "x2" in summary["un-used"]
        assert "y1" in summary["spline, 3 knots"]
        assert "y2" in summary["poly, degree 2"]

    def test_coefficients_named(self, synthetic_dataset):
        model = InferredModel.fit(full_spec(synthetic_dataset), synthetic_dataset)
        assert set(model.coefficients) == {"x1", "x2", "y1", "y2"}

    def test_repr(self, synthetic_dataset):
        model = InferredModel.fit(full_spec(synthetic_dataset), synthetic_dataset)
        assert "InferredModel" in repr(model)
