"""Unit and property tests for OLS/weighted regression and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoxplotStats,
    absolute_percentage_errors,
    accumulate_gram,
    fit_ols,
    median_error,
    pearson_correlation,
    r_squared,
    solve_gram,
    spearman_correlation,
)


class TestFitOLS:
    def test_recovers_exact_line(self):
        x = np.linspace(0, 10, 30)[:, None]
        z = 2.0 + 3.0 * x[:, 0]
        fit = fit_ols(x, z)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.coefficients[0] == pytest.approx(3.0)

    def test_matches_polyfit(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        z = 1.0 - 2.0 * x + rng.normal(0, 0.1, size=100)
        fit = fit_ols(x[:, None], z)
        slope, intercept = np.polyfit(x, z, 1)
        assert fit.coefficients[0] == pytest.approx(slope, rel=1e-9)
        assert fit.intercept == pytest.approx(intercept, rel=1e-9)

    def test_residuals_orthogonal_to_design(self):
        """The defining property of least squares."""
        rng = np.random.default_rng(1)
        design = rng.normal(size=(80, 4))
        targets = rng.normal(size=80)
        fit = fit_ols(design, targets)
        residuals = targets - fit.predict(design)
        assert np.abs(design.T @ residuals).max() < 1e-8
        assert residuals.sum() == pytest.approx(0.0, abs=1e-8)

    def test_weighted_prefers_heavy_rows(self):
        design = np.array([[0.0], [1.0]])
        targets = np.array([0.0, 10.0])
        # Two inconsistent observations at x=1.
        design = np.vstack([design, [[1.0]]])
        targets = np.append(targets, 0.0)
        heavy_on_ten = fit_ols(design, targets, weights=np.array([1, 100, 1]))
        heavy_on_zero = fit_ols(design, targets, weights=np.array([1, 1, 100]))
        at_one = lambda f: f.predict(np.array([[1.0]]))[0]
        assert at_one(heavy_on_ten) > at_one(heavy_on_zero)

    def test_zero_weight_row_ignored(self):
        design = np.array([[1.0], [2.0], [3.0]])
        targets = np.array([1.0, 2.0, 100.0])
        fit = fit_ols(design, targets, weights=np.array([1.0, 1.0, 0.0]))
        assert fit.predict(np.array([[3.0]]))[0] == pytest.approx(3.0)

    def test_rank_deficiency_tolerated(self):
        design = np.column_stack([np.arange(10.0), np.arange(10.0)])
        fit = fit_ols(design, np.arange(10.0))
        assert np.isfinite(fit.coefficients).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_ols(np.zeros((0, 1)), np.zeros(0))
        with pytest.raises(ValueError):
            fit_ols(np.zeros((3, 1)), np.zeros(2))
        with pytest.raises(ValueError):
            fit_ols(np.zeros((3, 1)), np.zeros(3), weights=np.array([-1, 1, 1]))
        with pytest.raises(ValueError):
            fit_ols(np.zeros(3), np.zeros(3))

    def test_named_coefficients(self):
        fit = fit_ols(np.arange(6.0).reshape(3, 2), np.arange(3.0), ("a", "b"))
        assert set(fit.named_coefficients()) == {"a", "b"}

    def test_predict_validates_width(self):
        fit = fit_ols(np.arange(6.0).reshape(3, 2), np.arange(3.0))
        with pytest.raises(ValueError):
            fit.predict(np.zeros((2, 3)))

    @given(st.integers(1, 5), st.integers(10, 40))
    @settings(max_examples=30, deadline=None)
    def test_interpolates_exact_linear_systems(self, p, n):
        rng = np.random.default_rng(p * 1000 + n)
        design = rng.normal(size=(n, p))
        beta = rng.normal(size=p)
        targets = design @ beta + 1.5
        fit = fit_ols(design, targets)
        assert np.allclose(fit.predict(design), targets, atol=1e-8)


class TestGramPath:
    """The normal-equation formulation used by the fitness engine."""

    def test_matches_lstsq_unweighted(self):
        rng = np.random.default_rng(0)
        design = rng.normal(size=(60, 4))
        targets = 1.5 + design @ rng.normal(size=4) + rng.normal(0, 0.1, 60)
        ref = fit_ols(design, targets)
        fit = solve_gram(*accumulate_gram(design, targets))
        assert fit is not None
        assert fit.intercept == pytest.approx(ref.intercept, abs=1e-9)
        assert np.allclose(fit.coefficients, ref.coefficients, atol=1e-9)

    def test_matches_lstsq_weighted(self):
        rng = np.random.default_rng(1)
        design = rng.normal(size=(50, 3))
        targets = design @ np.array([1.0, -2.0, 0.5]) + rng.normal(0, 0.2, 50)
        weights = rng.uniform(0.25, 4.0, size=50)
        ref = fit_ols(design, targets, weights=weights)
        fit = solve_gram(*accumulate_gram(design, targets, weights))
        assert fit is not None
        assert fit.intercept == pytest.approx(ref.intercept, abs=1e-8)
        assert np.allclose(fit.coefficients, ref.coefficients, atol=1e-8)

    def test_zero_weight_rows_ignored(self):
        """Rows with zero weight contribute nothing to the Gram system —
        the fit equals the fit on the surviving rows alone."""
        rng = np.random.default_rng(2)
        design = rng.normal(size=(40, 2))
        targets = design @ np.array([2.0, -1.0]) + rng.normal(0, 0.05, 40)
        weights = np.ones(40)
        weights[25:] = 0.0
        fit = solve_gram(*accumulate_gram(design, targets, weights))
        sub = solve_gram(*accumulate_gram(design[:25], targets[:25]))
        assert fit is not None and sub is not None
        assert fit.intercept == pytest.approx(sub.intercept, abs=1e-9)
        assert np.allclose(fit.coefficients, sub.coefficients, atol=1e-9)

    def test_rank_deficient_declined(self):
        """Duplicated columns make the Gram matrix singular; solve_gram
        signals the caller to take the lstsq fallback instead of solving."""
        column = np.arange(12.0)
        design = np.column_stack([column, column])
        gram, moment = accumulate_gram(design, column)
        assert solve_gram(gram, moment) is None

    def test_ill_conditioned_declined(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=30)
        design = np.column_stack([base, base + 1e-9 * rng.normal(size=30)])
        gram, moment = accumulate_gram(design, base)
        assert solve_gram(gram, moment, condition_limit=1e10) is None

    def test_non_finite_declined(self):
        gram = np.array([[np.nan, 0.0], [0.0, 1.0]])
        assert solve_gram(gram, np.zeros(2)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            accumulate_gram(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            accumulate_gram(np.zeros((3, 1)), np.zeros(2))
        with pytest.raises(ValueError):
            accumulate_gram(
                np.zeros((3, 1)), np.zeros(3), weights=np.array([-1.0, 1, 1])
            )
        with pytest.raises(ValueError):
            solve_gram(np.eye(3), np.zeros(2))
        with pytest.raises(ValueError):
            solve_gram(np.eye(2), np.zeros(2), column_names=("a", "b"))

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 5),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_gram_matches_lstsq(self, seed, p, weighted):
        """On well-conditioned data the Cholesky solution of the normal
        equations matches the SVD-backed lstsq fit within tolerance."""
        rng = np.random.default_rng(seed)
        n = 30 + 6 * p
        design = rng.normal(size=(n, p))
        targets = 0.5 + design @ rng.normal(size=p) + rng.normal(0, 0.1, n)
        weights = rng.uniform(0.5, 2.0, size=n) if weighted else None
        ref = fit_ols(design, targets, weights=weights)
        fit = solve_gram(*accumulate_gram(design, targets, weights))
        assert fit is not None  # gaussian designs of this shape are well-conditioned
        assert fit.intercept == pytest.approx(ref.intercept, abs=1e-7)
        assert np.allclose(fit.coefficients, ref.coefficients, atol=1e-7)


class TestRSquared:
    def test_perfect(self):
        z = np.arange(10.0)
        assert r_squared(z, z) == 1.0

    def test_mean_prediction_zero(self):
        z = np.arange(10.0)
        assert r_squared(np.full(10, z.mean()), z) == pytest.approx(0.0)


class TestMetrics:
    def test_ape_basic(self):
        errors = absolute_percentage_errors(np.array([1.1]), np.array([1.0]))
        assert errors[0] == pytest.approx(0.1)

    def test_ape_rejects_zero_targets(self):
        with pytest.raises(ValueError):
            absolute_percentage_errors(np.array([1.0]), np.array([0.0]))

    def test_median_error(self):
        preds = np.array([1.0, 2.0, 4.0])
        targets = np.array([1.0, 1.0, 1.0])
        assert median_error(preds, targets) == 1.0  # |2-1|/1

    def test_pearson_perfect(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)

    def test_pearson_inverse(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_spearman_monotone_nonlinear(self):
        a = np.arange(1.0, 11.0)
        assert spearman_correlation(a, a**3) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([5.0, 5.0, 6.0, 7.0])
        assert spearman_correlation(a, b) == pytest.approx(1.0)

    def test_boxplot_stats(self):
        stats = BoxplotStats.from_errors(np.linspace(0, 1, 101))
        assert stats.median == pytest.approx(0.5)
        assert stats.q1 == pytest.approx(0.25)
        assert stats.q3 == pytest.approx(0.75)
        assert stats.n == 101

    def test_boxplot_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_errors(np.array([]))

    def test_boxplot_row_format(self):
        stats = BoxplotStats.from_errors(np.array([0.1, 0.2]))
        row = stats.row("label")
        assert "label" in row and "median" in row
