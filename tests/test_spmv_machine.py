"""Unit tests for the SpMV kernel trace, timing, and energy models."""

import numpy as np
import pytest

from repro.spmv import (
    CacheConfig,
    SparseMatrix,
    default_cache,
    kernel_trace,
    miss_penalty_cycles,
    run_spmv,
    to_bcsr,
)
from repro.spmv.kernel import (
    COL_IDX_BASE,
    DEST_BASE,
    ROW_START_BASE,
    SOURCE_BASE,
    VALUE_BASE,
)
from repro.spmv.machine import cache_access_nj

DENSE = np.array(
    [
        [1, 2, 0, 0],
        [3, 4, 0, 0],
        [0, 0, 5, 6],
        [0, 0, 7, 8],
    ],
    dtype=float,
)


def small_bcsr(r=2, c=2):
    return to_bcsr(SparseMatrix.from_dense(DENSE), r, c)


class TestKernelTrace:
    def test_access_count(self):
        b = small_bcsr()
        trace = kernel_trace(b)
        # 2 blocks x (1 colidx + 4 values + 2 source) + 2 rows x (1 ptr + 4 dest)
        assert len(trace.addresses) == 2 * 7 + 2 * 5

    def test_flops(self):
        b = small_bcsr()
        trace = kernel_trace(b)
        assert trace.true_flops == 2 * 8
        assert trace.total_flops == 2 * 8  # no fill on this matrix

    def test_fill_increases_total_flops_only(self):
        dense = np.eye(4)
        b = to_bcsr(SparseMatrix.from_dense(dense), 2, 2)
        trace = kernel_trace(b)
        assert trace.true_flops == 8
        assert trace.total_flops == 16

    def test_regions_disjoint(self):
        trace = kernel_trace(small_bcsr())
        addrs = trace.addresses
        regions = [ROW_START_BASE, COL_IDX_BASE, VALUE_BASE, SOURCE_BASE, DEST_BASE]
        for addr in addrs:
            assert any(base <= addr < base + (1 << 30) for base in regions)

    def test_values_streamed_sequentially(self):
        trace = kernel_trace(small_bcsr())
        values = [a for a in trace.addresses if VALUE_BASE <= a < SOURCE_BASE]
        assert values == sorted(values)
        assert np.all(np.diff(values) == 8)

    def test_source_reuse_per_block(self):
        b = small_bcsr(2, 2)
        trace = kernel_trace(b)
        source = [a for a in trace.addresses if SOURCE_BASE <= a < DEST_BASE]
        assert len(source) == b.n_blocks * b.c

    def test_instruction_count_scales_with_blocks(self):
        a = kernel_trace(small_bcsr(1, 1))
        b = kernel_trace(small_bcsr(2, 2))
        # Same stored values, fewer blocks: less overhead.
        assert b.n_instructions < a.n_instructions

    def test_code_footprint_grows_with_block_area(self):
        assert kernel_trace(small_bcsr(2, 2)).code_bytes < kernel_trace(
            small_bcsr(4, 4)
        ).code_bytes


class TestTiming:
    def test_result_fields_consistent(self):
        result = run_spmv(small_bcsr(), default_cache())
        assert result.cycles > 0
        assert result.time_seconds == pytest.approx(result.cycles / 400e6)
        assert result.mflops > 0
        assert result.nj_per_flop > 0

    def test_miss_penalty_grows_with_line(self):
        assert miss_penalty_cycles(128) > miss_penalty_cycles(16)

    def test_fewer_misses_is_faster(self):
        b = small_bcsr()
        small = CacheConfig(16, 4, 1, "LRU", 2, 1, "LRU")
        large = CacheConfig(64, 256, 8, "LRU", 128, 8, "LRU")
        assert run_spmv(b, large).mflops >= run_spmv(b, small).mflops

    def test_deterministic(self):
        b = small_bcsr()
        config = default_cache()
        assert run_spmv(b, config).cycles == run_spmv(b, config).cycles

    def test_performance_excludes_filled_zeros(self):
        """The paper's footnote 4: Mflop/s counts only true flops."""
        dense = np.eye(8)
        unblocked = to_bcsr(SparseMatrix.from_dense(dense), 1, 1)
        blocked = to_bcsr(SparseMatrix.from_dense(dense), 8, 8)  # fill 8x
        config = default_cache()
        r1 = run_spmv(unblocked, config)
        r8 = run_spmv(blocked, config)
        assert kernel_trace(blocked).true_flops == kernel_trace(unblocked).true_flops
        # The heavy fill makes the blocked version *slower* per true flop.
        assert r8.mflops < r1.mflops


class TestEnergy:
    def test_cache_energy_grows_with_size_and_ways(self):
        assert cache_access_nj(256, 2, 32) > cache_access_nj(16, 2, 32)
        assert cache_access_nj(16, 8, 32) > cache_access_nj(16, 1, 32)

    def test_bigger_cache_costs_energy(self):
        b = small_bcsr()
        small = CacheConfig(32, 16, 8, "LRU", 8, 2, "LRU")
        large = CacheConfig(32, 256, 8, "LRU", 8, 2, "LRU")
        r_small = run_spmv(b, small)
        r_large = run_spmv(b, large)
        # Same associativity and line size, tiny working set: both suffer
        # only compulsory misses, so the energy gap is pure per-access cost.
        assert r_small.data_misses == r_large.data_misses
        assert r_large.nj_per_flop > r_small.nj_per_flop

    def test_memory_energy_scales_with_line(self):
        """Larger lines transfer more words per miss at 6 nJ per word —
        the Figure 16(b) architecture-tuning energy cost."""
        from repro.spmv import table4_matrix

        b = to_bcsr(table4_matrix("memplus", seed=0), 1, 1)
        short = CacheConfig(16, 8, 2, "LRU", 8, 2, "LRU")
        long_ = CacheConfig(128, 8, 2, "LRU", 8, 2, "LRU")
        r_short = run_spmv(b, short)
        r_long = run_spmv(b, long_)
        # memplus scatters: long lines over-fetch and burn energy.
        assert r_long.nj_per_flop > r_short.nj_per_flop


class TestEnergyBreakdown:
    def test_components_sum_to_total(self):
        result = run_spmv(small_bcsr(), default_cache())
        bd = result.energy_breakdown
        assert bd.total == pytest.approx(result.energy_nj)
        for component in (bd.core, bd.dcache, bd.icache, bd.memory, bd.leakage):
            assert component >= 0.0

    def test_memory_dominates_for_scattered_matrix(self):
        """The Figure 16(b) narrative: SpMV energy is transfer-dominated,
        which is why blocking (fewer transfers) saves energy."""
        from repro.spmv import table4_matrix

        b = to_bcsr(table4_matrix("memplus", seed=0), 1, 1)
        bd = run_spmv(b, default_cache()).energy_breakdown
        assert bd.memory > bd.dcache
        assert bd.memory > bd.core

    def test_blocking_reduces_memory_energy(self):
        from repro.spmv import table4_matrix

        m = table4_matrix("olafu", seed=0)
        unblocked = run_spmv(to_bcsr(m, 1, 1), default_cache()).energy_breakdown
        blocked = run_spmv(to_bcsr(m, 6, 6), default_cache()).energy_breakdown
        assert blocked.memory < unblocked.memory
