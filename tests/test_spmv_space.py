"""Unit tests for the SpMV space, domain models, and tuning searches."""

import numpy as np
import pytest

from repro.core import median_error
from repro.spmv import (
    BLOCK_SIZES,
    SPMV_HARDWARE_NAMES,
    SPMV_SOFTWARE_NAMES,
    SpMVSpace,
    TuningSearch,
    default_cache,
    fit_spmv_model,
    predicted_topology,
    spmv_model_spec,
    table4_matrix,
    tuning_cache_candidates,
)


@pytest.fixture(scope="module")
def space():
    return SpMVSpace(table4_matrix("olafu", seed=0))


class TestSpMVSpace:
    def test_bcsr_memoized(self, space):
        assert space.bcsr(2, 2) is space.bcsr(2, 2)

    def test_evaluate_memoized(self, space):
        config = default_cache()
        a = space.evaluate(1, 1, config)
        b = space.evaluate(1, 1, config)
        assert a is b

    def test_software_vector(self, space):
        vec = space.software_vector(3, 4)
        assert vec[0] == 3 and vec[1] == 4
        assert vec[2] == pytest.approx(space.fill_ratio(3, 4))

    def test_record_targets(self, space):
        config = default_cache()
        perf = space.record(2, 2, config, "mflops")
        power = space.record(2, 2, config, "nj_per_flop")
        assert perf.z != power.z
        assert perf.application == "olafu"

    def test_sample_dataset(self, space):
        rng = np.random.default_rng(0)
        ds = space.sample_dataset(20, rng)
        assert len(ds) == 20
        assert ds.x_names == SPMV_SOFTWARE_NAMES
        assert ds.y_names == SPMV_HARDWARE_NAMES

    def test_topology_shape(self, space):
        grid = space.topology(default_cache())
        assert grid.shape == (8, 8)
        assert (grid > 0).all()


class TestDomainModel:
    def test_spec_is_compact(self):
        spec = spmv_model_spec()
        # Domain knowledge keeps the model small (§5's point).
        assert len(spec.included_variables) <= 8
        assert len(spec.interactions) <= 10

    def test_model_accuracy_on_holdout(self, space):
        rng = np.random.default_rng(1)
        train = space.sample_dataset(120, rng)
        val = space.sample_dataset(40, rng)
        model = fit_spmv_model(train)
        error = median_error(model.predict(val), val.targets())
        assert error < 0.15  # paper: 4-6% at full sample counts

    def test_predicted_topology_shape(self, space):
        rng = np.random.default_rng(1)
        model = fit_spmv_model(space.sample_dataset(100, rng))
        grid = predicted_topology(model, space, default_cache())
        assert grid.shape == (8, 8)
        assert np.isfinite(grid).all()


class TestTuning:
    @pytest.fixture(scope="class")
    def search(self, space):
        rng = np.random.default_rng(2)
        model = fit_spmv_model(space.sample_dataset(120, rng))
        return TuningSearch(space, model, verify_top=3)

    def test_baseline_is_unblocked_default(self, search):
        base = search.baseline()
        assert (base.r, base.c) == (1, 1)
        assert base.speedup == pytest.approx(1.0)

    def test_application_tuning_beats_baseline(self, search):
        result = search.application_tuning()
        assert result.mflops >= result.baseline_mflops
        assert result.cache == search.baseline_cache

    def test_application_tuning_finds_natural_block(self, search):
        result = search.application_tuning()
        # olafu is built from 6x6 tiles: good blockings divide 6.
        assert result.r in (2, 3, 6) and result.c in (1, 2, 3, 6)

    def test_architecture_tuning_keeps_code_unblocked(self, search, rng):
        caches = tuning_cache_candidates(8, rng)
        result = search.architecture_tuning(caches)
        assert (result.r, result.c) == (1, 1)
        assert result.speedup >= 1.0

    def test_coordinated_dominates(self, search, rng):
        caches = tuning_cache_candidates(8, rng)
        app = search.application_tuning()
        arch = search.architecture_tuning(caches)
        coord = search.coordinated_tuning(caches)
        assert coord.mflops >= app.mflops - 1e-9
        assert coord.mflops >= arch.mflops - 1e-9

    def test_model_free_search_is_exhaustive_oracle(self, space, rng):
        oracle = TuningSearch(space, model=None)
        guided = oracle.application_tuning()
        # With no model, _choose evaluates everything: the result is the
        # true best block size on the baseline cache.
        best = max(
            (space.evaluate(r, c, oracle.baseline_cache).mflops, (r, c))
            for r in BLOCK_SIZES
            for c in BLOCK_SIZES
        )
        assert (guided.r, guided.c) == best[1]

    def test_energy_ratio(self, search):
        result = search.application_tuning()
        assert result.energy_ratio == pytest.approx(
            result.nj_per_flop / result.baseline_nj_per_flop
        )
