"""The fault-injection framework and retry/backoff machinery.

Covers: plan parsing and arming, deterministic scheduling (hit lists,
seeded probability, seeded corruption), every action's semantics (kill is
asserted on a real child process), obs accounting, the retry policy's
determinism/monotonicity/cap properties (hypothesis), and the supervised
process pool returning serial-identical results under arbitrary injected
worker-death patterns (hypothesis).
"""

import multiprocessing
import os
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults, obs
from repro.faults import (
    FaultError,
    FaultPlan,
    InjectedDrop,
    InjectedFault,
    NO_RETRY,
    RetryPolicy,
)
from repro.parallel import WorkerFailure, parallel_map

#: Chaos runs re-execute this suite under several seeds (CI matrix).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _disarmed():
    """Never leak an armed plan (or stray env arming) into another test."""
    previous = faults.active_plan()
    faults.disarm()
    yield
    if previous is not None:
        faults.arm(previous)
    else:
        faults.disarm()


# -- parsing ---------------------------------------------------------------------------


class TestParsing:
    def test_round_trip(self):
        spec = "serve.read_frame=drop@1,3;parallel.job=kill:7;x=delay:0.5%0.25"
        plan = FaultPlan.parse(spec, seed=CHAOS_SEED)
        assert plan.spec() == spec
        assert plan.seed == CHAOS_SEED
        assert [r.action for r in plan.rules] == ["drop", "kill", "delay"]
        assert plan.rules[0].hits == frozenset({1, 3})
        assert plan.rules[1].exit_code == 7
        assert plan.rules[2].probability == 0.25
        assert plan.rules[2].delay_s == 0.5

    def test_env_form(self):
        plan = FaultPlan.from_env("17:a=raise@2")
        assert plan.seed == 17 and plan.rules[0].hits == frozenset({2})

    @pytest.mark.parametrize(
        "bad",
        [
            "a",                    # no '='
            "a=explode",            # unknown action
            "a=raise@zero",         # non-integer hits
            "a=raise@",             # empty hit list
            "a=raise%much",         # non-float probability
            "a=raise%1.5",          # probability out of range
            "a=delay:soon",         # non-numeric delay
            "a=raise:unregistered", # unknown exception token
            "",                     # no rules at all
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultError):
            FaultPlan.parse(bad)

    def test_env_needs_seed_prefix(self):
        with pytest.raises(FaultError):
            FaultPlan.from_env("a=raise")
        with pytest.raises(FaultError):
            FaultPlan.from_env("notanint:a=raise")

    def test_arm_from_env(self):
        plan = faults.arm_from_env({"REPRO_FAULTS": "5:x=drop"})
        assert faults.active_plan() is plan and plan.seed == 5
        assert faults.arm_from_env({}) is None  # unset leaves arming alone


# -- sites and actions -----------------------------------------------------------------


class TestSites:
    def test_disarmed_site_is_identity(self):
        payload = b"untouched"
        assert faults.site("anything", payload) is payload
        assert faults.site("anything") is None

    def test_raise_on_scheduled_hits_only(self):
        plan = FaultPlan.parse("a.b=raise@2", seed=CHAOS_SEED)
        with faults.armed(plan):
            faults.site("a.b")  # hit 1: pass
            with pytest.raises(InjectedFault, match="a.b"):
                faults.site("a.b")  # hit 2: fire
            faults.site("a.b")  # hit 3: pass again
        assert plan.hit_counts() == [3]
        assert plan.injected_counts() == [1]

    def test_prefix_glob_matches_site_family(self):
        plan = FaultPlan.parse("serve.*=raise@1,2")
        with faults.armed(plan):
            with pytest.raises(InjectedFault):
                faults.site("serve.read_frame")
            with pytest.raises(InjectedFault):
                faults.site("serve.dispatch")
            faults.site("registry.publish.link")  # unmatched family
        assert plan.hit_counts() == [2]

    def test_drop_is_a_connection_error(self):
        plan = FaultPlan.parse("sock=drop")
        with faults.armed(plan), pytest.raises(ConnectionError):
            faults.site("sock")
        with faults.armed(plan), pytest.raises(InjectedDrop):
            faults.site("sock")

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("slow=delay:0.05@1")
        with faults.armed(plan):
            start = time.perf_counter()
            faults.site("slow")
            assert time.perf_counter() - start >= 0.04

    def test_corrupt_is_deterministic_per_seed(self):
        payload = b"a length-prefixed frame body of reasonable size"
        plan = FaultPlan.parse("wire=corrupt", seed=CHAOS_SEED)
        with faults.armed(plan):
            first = faults.site("wire", payload)
        plan.reset()
        with faults.armed(plan):
            again = faults.site("wire", payload)
        other = FaultPlan.parse("wire=corrupt", seed=CHAOS_SEED + 1)
        with faults.armed(other):
            different = faults.site("wire", payload)
        assert first == again != payload
        assert len(first) == len(payload)  # flips bytes, never reframes
        assert different != first

    def test_probability_sequence_is_seeded(self):
        def firing_pattern(plan):
            with faults.armed(plan):
                return [plan.decide("p") is not None for _ in range(64)]

        base = firing_pattern(FaultPlan.parse("p=raise%0.3", seed=CHAOS_SEED))
        same = firing_pattern(FaultPlan.parse("p=raise%0.3", seed=CHAOS_SEED))
        other = firing_pattern(FaultPlan.parse("p=raise%0.3", seed=CHAOS_SEED + 9))
        assert base == same
        assert base != other
        assert 2 <= sum(base) <= 40  # roughly the asked-for rate

    def test_registered_exception_tokens(self):
        from repro.serve.batching import QueueFullError

        plan = FaultPlan.parse("q=raise:queue_full@1")
        with faults.armed(plan), pytest.raises(QueueFullError):
            faults.site("q")

    def test_obs_counters_record_injections(self):
        obs.reset()
        plan = FaultPlan.parse("counted=raise@1")
        with faults.armed(plan), pytest.raises(InjectedFault):
            faults.site("counted")
        counters = obs.snapshot()["counters"]
        assert counters["faults.injected"] == 1
        assert counters["faults.counted"] == 1
        assert counters["faults.action.raise"] == 1


def _hit_kill_site():
    faults.site("worker.doom")


class TestKill:
    def test_kill_exits_the_process_uncatchably(self):
        plan = FaultPlan.parse("worker.doom=kill:7@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            child = multiprocessing.Process(target=_hit_kill_site)
            child.start()
            child.join(10)
        assert child.exitcode == 7
        # The shared hit counter advanced in the *child*: schedules are
        # process-global, which is what makes `kill@1` mean one death
        # total rather than one death per worker.
        assert plan.hit_counts() == [1]
        assert plan.injected_counts() == [1]


# -- retry policy ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_deterministic_per_seed(self):
        a = RetryPolicy(seed=CHAOS_SEED).schedule()
        b = RetryPolicy(seed=CHAOS_SEED).schedule()
        c = RetryPolicy(seed=CHAOS_SEED + 1).schedule()
        assert a == b
        assert a != c

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("nope")
            return "finally"

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.001, seed=CHAOS_SEED)
        assert policy.call(flaky) == "finally"
        assert len(attempts) == 3

    def test_call_gives_up_after_max_attempts(self):
        attempts = []

        def always_down():
            attempts.append(1)
            raise ConnectionError("still down")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001, seed=CHAOS_SEED)
        with pytest.raises(ConnectionError):
            policy.call(always_down)
        assert len(attempts) == 3

    def test_no_retry_is_single_shot(self):
        attempts = []

        def boom():
            attempts.append(1)
            raise ConnectionError("x")

        with pytest.raises(ConnectionError):
            NO_RETRY.call(boom)
        assert len(attempts) == 1

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestRetryPolicyDerive:
    """The per-request jitter derivation ServeClient relies on (DESIGN.md §8)."""

    def test_same_salt_same_schedule(self):
        policy = RetryPolicy(seed=CHAOS_SEED)
        assert policy.derive("req-1").seed == policy.derive("req-1").seed
        assert policy.derive("req-1").schedule() == policy.derive("req-1").schedule()

    def test_different_salts_decorrelate(self):
        policy = RetryPolicy(seed=CHAOS_SEED)
        assert policy.derive(1).seed != policy.derive(2).seed
        assert policy.derive(1).schedule() != policy.derive(2).schedule()

    def test_derived_seed_is_a_pure_function(self):
        """sha256("<seed>:<salt>")[:8] — stable across processes and shard
        reconnects, so a retried request keeps its schedule wherever it
        lands."""
        import hashlib

        expected = int.from_bytes(
            hashlib.sha256(b"7:42").digest()[:8], "big"
        )
        assert RetryPolicy(seed=7).derive(42).seed == expected

    def test_derive_changes_only_the_seed(self):
        policy = RetryPolicy(
            seed=CHAOS_SEED, max_attempts=7, base_delay_s=0.123, jitter=0.3
        )
        derived = policy.derive("salt")
        assert derived.max_attempts == policy.max_attempts
        assert derived.base_delay_s == policy.base_delay_s
        assert derived.jitter == policy.jitter
        assert derived.seed != policy.seed

    def test_request_sequence_replays_identically(self):
        """Two clients with the same base policy that issue the same
        request history derive identical backoff schedules, request for
        request — the fleet-level determinism contract."""
        policy_a = RetryPolicy(seed=CHAOS_SEED)
        policy_b = RetryPolicy(seed=CHAOS_SEED)
        schedule_a = [policy_a.derive(seq).schedule() for seq in range(1, 6)]
        schedule_b = [policy_b.derive(seq).schedule() for seq in range(1, 6)]
        assert schedule_a == schedule_b
        assert len({tuple(s) for s in schedule_a}) == 5  # decorrelated


@given(
    seed=st.integers(0, 2**31),
    max_attempts=st.integers(2, 12),
    base=st.floats(0.001, 0.5),
    multiplier=st.floats(1.0, 4.0),
    cap=st.floats(0.001, 5.0),
    jitter=st.floats(0.0, 0.5),
)
@settings(max_examples=60, deadline=None)
def test_backoff_properties(seed, max_attempts, base, multiplier, cap, jitter):
    """Deterministic per seed; base schedule monotone non-decreasing and
    capped; jitter perturbs by at most the configured fraction."""
    policy = RetryPolicy(
        max_attempts=max_attempts,
        base_delay_s=base,
        multiplier=multiplier,
        max_delay_s=cap,
        jitter=jitter,
        seed=seed,
    )
    assert policy.schedule() == policy.schedule()  # pure function of config

    bases = [policy.base_backoff_s(f) for f in range(1, max_attempts)]
    assert all(a <= b for a, b in zip(bases, bases[1:]))  # monotone
    assert all(b <= cap for b in bases)  # capped

    for failure, delay in enumerate(policy.schedule(), start=1):
        b = policy.base_backoff_s(failure)
        assert b * (1 - jitter) - 1e-12 <= delay <= b * (1 + jitter) + 1e-12
        assert delay >= 0.0


# -- supervised parallelism under worker death -----------------------------------------


def _cube(x):
    return x**3


@given(deaths=st.sets(st.integers(1, 10), max_size=3))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
def test_supervised_map_identical_under_any_death_pattern(deaths):
    """Any pattern of killed workers yields the serial path's results."""
    items = list(range(8))
    expected = [_cube(i) for i in items]
    if deaths:
        hits = ",".join(str(h) for h in sorted(deaths))
        plan = FaultPlan.parse(f"parallel.job=kill@{hits}", seed=CHAOS_SEED)
    else:
        plan = None
    try:
        if plan is not None:
            faults.arm(plan)
        out = parallel_map(
            _cube,
            items,
            n_workers=3,
            supervised=True,
            max_attempts=len(deaths) + 2,
        )
    finally:
        faults.disarm()
    assert out == expected
    if plan is not None:
        assert sum(plan.injected_counts()) == len(
            [h for h in deaths if h <= max(plan.hit_counts())]
        )


def _record_and_double(x):
    obs.counter("supervised.jobs").inc()
    obs.histogram("supervised.values", (2, 4, 8, 16)).observe(x)
    return 2 * x


class TestSupervisedMetrics:
    def test_metrics_merge_identical_to_serial_despite_deaths(self):
        items = list(range(9))
        obs.reset()
        serial = parallel_map(_record_and_double, items, n_workers=1)
        serial_snapshot = obs.snapshot()

        obs.reset()
        plan = FaultPlan.parse("parallel.job=kill@2", seed=CHAOS_SEED)
        with faults.armed(plan):
            survived = parallel_map(
                _record_and_double,
                items,
                n_workers=3,
                supervised=True,
                collect_metrics=True,
            )
        chaos_snapshot = obs.snapshot()
        assert survived == serial
        assert (
            chaos_snapshot["counters"]["supervised.jobs"]
            == serial_snapshot["counters"]["supervised.jobs"]
        )
        assert (
            chaos_snapshot["histograms"]["supervised.values"]
            == serial_snapshot["histograms"]["supervised.values"]
        )
        # The supervisor recorded what it survived.
        assert chaos_snapshot["counters"]["parallel.worker_deaths"] >= 1
        assert chaos_snapshot["counters"]["parallel.resubmissions"] >= 1

    def test_gives_up_after_attempt_budget(self):
        plan = FaultPlan.parse("parallel.job=kill")  # every job dies, forever
        with faults.armed(plan), pytest.raises(WorkerFailure):
            parallel_map(
                _cube, list(range(4)), n_workers=2, supervised=True, max_attempts=2
            )

    def test_job_exceptions_propagate_not_retried(self):
        plan = FaultPlan.parse("parallel.job=raise@1")
        with faults.armed(plan), pytest.raises(InjectedFault):
            parallel_map(_cube, list(range(4)), n_workers=2, supervised=True)
