"""Versioned model registry: publish atomicity, validation, LRU cache."""

import json
import threading

import pytest

from repro.core import InferredModel, ModelFormatError, ModelSpec, TransformKind
from repro.serve import ModelKey, ModelRegistry, RegistryError

from tests.conftest import make_synthetic_dataset

KEY = ModelKey("general", "spec2006")


@pytest.fixture(scope="module")
def fitted():
    ds = make_synthetic_dataset()
    spec = ModelSpec(
        transforms={
            "x1": TransformKind.LINEAR,
            "x2": TransformKind.QUADRATIC,
            "y1": TransformKind.LINEAR,
            "y2": TransformKind.EXCLUDED,
        },
        interactions=frozenset({("x1", "y1")}),
    )
    return ds, InferredModel.fit(spec, ds)


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry", cache_size=2)


class TestPublish:
    def test_versions_ascend(self, registry, fitted):
        _, model = fitted
        r1 = registry.publish(KEY, model)
        r2 = registry.publish(KEY, model)
        assert (r1.version, r2.version) == (1, 2)
        assert registry.versions(KEY) == [1, 2]
        assert registry.latest_version(KEY) == 2

    def test_metadata_stored(self, registry, fitted):
        _, model = fitted
        receipt = registry.publish(KEY, model, metadata={"trigger": "bootstrap"})
        assert registry.entry_metadata(KEY, receipt.version) == {
            "trigger": "bootstrap"
        }

    def test_no_temp_residue(self, registry, fitted):
        _, model = fitted
        registry.publish(KEY, model)
        leftovers = [
            p for p in (registry.root / KEY.slug).iterdir()
            if p.name.startswith(".tmp")
        ]
        assert leftovers == []

    def test_keys_listed(self, registry, fitted):
        _, model = fitted
        registry.publish(KEY, model)
        registry.publish(ModelKey("spmv", "table4"), model)
        assert set(registry.keys()) == {KEY, ModelKey("spmv", "table4")}

    def test_concurrent_publishers_never_collide(self, registry, fitted):
        _, model = fitted
        errors = []

        def publish_many():
            try:
                for _ in range(5):
                    registry.publish(KEY, model)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=publish_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert registry.versions(KEY) == list(range(1, 21))


class TestLoad:
    def test_roundtrip_latest_and_pinned(self, registry, fitted):
        ds, model = fitted
        registry.publish(KEY, model)
        registry.publish(KEY, model)
        latest, v_latest = registry.load(KEY)
        pinned, v_pinned = registry.load(KEY, version=1)
        assert (v_latest, v_pinned) == (2, 1)
        assert (latest.predict(ds) == model.predict(ds)).all()
        assert (pinned.predict(ds) == model.predict(ds)).all()

    def test_missing_key(self, registry):
        with pytest.raises(RegistryError, match="no versions"):
            registry.load(ModelKey("nope", "nothing"))

    def test_missing_version(self, registry, fitted):
        _, model = fitted
        registry.publish(KEY, model)
        with pytest.raises(RegistryError, match="no version 7"):
            registry.load(KEY, version=7)

    def test_corrupted_entry_rejected(self, registry, fitted):
        _, model = fitted
        receipt = registry.publish(KEY, model)
        payload = json.loads(receipt.path.read_text())
        payload["model"]["fit"]["intercept"] += 0.5
        receipt.path.write_text(json.dumps(payload))
        registry._cache.clear()
        with pytest.raises(ModelFormatError, match="checksum mismatch"):
            registry.load(KEY)

    def test_wrong_envelope_schema_rejected(self, registry, fitted):
        _, model = fitted
        receipt = registry.publish(KEY, model)
        payload = json.loads(receipt.path.read_text())
        payload["registry_schema"] = 42
        receipt.path.write_text(json.dumps(payload))
        registry._cache.clear()
        with pytest.raises(ModelFormatError, match="envelope schema"):
            registry.load(KEY)

    def test_stale_latest_pointer_falls_back(self, registry, fitted):
        _, model = fitted
        registry.publish(KEY, model)
        (registry.root / KEY.slug / "LATEST").write_text("99\n")
        assert registry.latest_version(KEY) == 1


class TestCache:
    def test_cache_hit_returns_same_object(self, registry, fitted):
        _, model = fitted
        registry.publish(KEY, model)
        registry._cache.clear()
        first, _ = registry.load(KEY)
        second, _ = registry.load(KEY)
        assert first is second

    def test_lru_eviction(self, registry, fitted):
        _, model = fitted
        for _ in range(3):
            registry.publish(KEY, model)
        registry._cache.clear()
        registry.load(KEY, 1)
        registry.load(KEY, 2)
        registry.load(KEY, 3)  # capacity 2: evicts version 1
        assert registry.cache_info()["entries"] == 2
        assert (KEY.slug, 1) not in registry._cache
        assert (KEY.slug, 3) in registry._cache

    def test_publish_seeds_cache(self, registry, fitted):
        ds, model = fitted
        receipt = registry.publish(KEY, model)
        loaded, _ = registry.load(KEY, receipt.version)
        assert loaded is model
