"""Tests for model-guided architecture search (§4.3's hill climbing)."""

import numpy as np
import pytest

from repro.core import InferredModel, manual_general_spec, ProfileDataset, ProfileRecord
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import (
    ArchitectureSearch,
    HARDWARE_VARIABLE_NAMES,
    Simulator,
    random_search_baseline,
    sample_configs,
)
from repro.uarch.config import _LEVEL_COUNTS
from repro.workloads import application_spec, generate_trace

SHARD = 2_000


@pytest.fixture(scope="module")
def tuned_setup():
    """A model trained for hmmer plus the simulator oracle."""
    rng = np.random.default_rng(4)
    sim = Simulator()
    ds = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    shards_by_app = {}
    for app in ("astar", "hmmer", "omnetpp"):
        trace = generate_trace(
            application_spec(app), 4 * SHARD, seed=2, shard_length=SHARD
        )
        shards = trace.shards(SHARD)
        profiles = profile_application(trace, SHARD, application=app)
        shards_by_app[app] = (shards, profiles)
        for config in sample_configs(30, rng):
            i = int(rng.integers(0, len(shards)))
            ds.add(
                ProfileRecord(
                    app, profiles[i].x, config.as_vector(),
                    sim.cpi(shards[i], config),
                )
            )
    model = InferredModel.fit(manual_general_spec(), ds)
    shards, profiles = shards_by_app["hmmer"]
    return model, sim, shards[0], profiles[0].x


class TestArchitectureSearch:
    def test_objective_validated(self, tuned_setup):
        model, _, _, x = tuned_setup
        with pytest.raises(ValueError):
            ArchitectureSearch(model, x, objective="median")

    def test_climb_reaches_local_optimum(self, tuned_setup):
        model, _, _, x = tuned_setup
        search = ArchitectureSearch(model, x)
        start = [0] * len(_LEVEL_COUNTS)
        config, value = search.climb(start)
        # No +/-1 neighbor predicts better: verify a sample of neighbors.
        for dim in range(0, len(_LEVEL_COUNTS), 3):
            for delta in (-1, 1):
                level = config.levels[dim] + delta
                if not 0 <= level < _LEVEL_COUNTS[dim]:
                    continue
                neighbor = list(config.levels)
                neighbor[dim] = level
                from repro.uarch import config_from_levels

                assert search.predict(config_from_levels(neighbor)) >= value - 1e-9

    def test_search_counts_predictions(self, tuned_setup):
        model, _, _, x = tuned_setup
        search = ArchitectureSearch(model, x)
        outcome = search.search(np.random.default_rng(0), n_restarts=2)
        assert outcome.n_predictions > 0
        assert outcome.n_restarts == 2
        assert len(outcome.trajectory) == 2

    def test_search_beats_its_starts(self, tuned_setup):
        model, _, _, x = tuned_setup
        search = ArchitectureSearch(model, x)
        rng = np.random.default_rng(1)
        outcome = search.search(rng, n_restarts=3)
        # The chosen optimum is the best of the per-restart local optima.
        assert outcome.predicted_cpi == min(v for _, v in outcome.trajectory)

    def test_restarts_validated(self, tuned_setup):
        model, _, _, x = tuned_setup
        with pytest.raises(ValueError):
            ArchitectureSearch(model, x).search(np.random.default_rng(0), 0)

    def test_model_guided_finds_good_true_architecture(self, tuned_setup):
        """The point of §4.3: the model proposes, a handful of true
        simulations verify.  At equal *simulation* budget the model-guided
        search beats random search, and it stays competitive with a random
        search allowed 15x more simulations."""
        model, sim, shard, x = tuned_setup
        rng = np.random.default_rng(7)
        outcome = ArchitectureSearch(model, x).search(rng, n_restarts=4)
        # Verification: simulate only the per-restart local optima.
        verified_best = min(
            sim.cpi(shard, config) for config, _ in outcome.trajectory
        )
        n_simulations = len(outcome.trajectory)  # = 4

        _, random_same_budget = random_search_baseline(
            lambda config: sim.cpi(shard, config),
            np.random.default_rng(8),
            n_simulations,
        )
        _, random_big_budget = random_search_baseline(
            lambda config: sim.cpi(shard, config), np.random.default_rng(8), 60
        )
        assert verified_best <= random_same_budget
        assert verified_best <= 1.5 * random_big_budget

    def test_random_baseline_validates_budget(self, tuned_setup):
        _, sim, shard, _ = tuned_setup
        with pytest.raises(ValueError):
            random_search_baseline(lambda c: 1.0, np.random.default_rng(0), 0)

    def test_max_objective(self, tuned_setup):
        """Maximizing CPI finds a *worse* architecture than minimizing."""
        model, _, _, x = tuned_setup
        rng = np.random.default_rng(2)
        worst = ArchitectureSearch(model, x, objective="max").search(rng, 2)
        rng = np.random.default_rng(2)
        best = ArchitectureSearch(model, x, objective="min").search(rng, 2)
        assert worst.predicted_cpi > best.predicted_cpi
