"""Unit tests for sparse matrices and the Table 4 suite."""

import numpy as np
import pytest

from repro.spmv import (
    MATRIX_NAMES,
    SparseMatrix,
    TABLE4,
    fem_matrix,
    scattered_matrix,
    table4_matrix,
    table4_suite,
)


class TestSparseMatrix:
    def test_from_dense_roundtrip(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        m = SparseMatrix.from_dense(dense)
        assert np.array_equal(m.to_dense(), dense)
        assert m.nnz == 2

    def test_duplicates_coalesced(self):
        m = SparseMatrix(2, 2, [0, 0], [1, 1], [1.0, 2.0])
        assert m.nnz == 1
        assert m.to_dense()[0, 1] == 3.0

    def test_sparsity(self):
        m = SparseMatrix(10, 10, [0], [0], [1.0])
        assert m.sparsity == 0.01

    def test_row_access(self):
        m = SparseMatrix(2, 3, [0, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        cols, vals = m.row(0)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 2.0]

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(6, 5)) * (rng.random((6, 5)) < 0.4)
        m = SparseMatrix.from_dense(dense)
        u = rng.normal(size=5)
        assert np.allclose(m.matvec(u), dense @ u)

    def test_matvec_validates_length(self):
        m = SparseMatrix(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.matvec(np.ones(2))

    def test_index_bounds_validated(self):
        with pytest.raises(ValueError):
            SparseMatrix(2, 2, [2], [0], [1.0])
        with pytest.raises(ValueError):
            SparseMatrix(2, 2, [0], [-1], [1.0])

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            SparseMatrix(0, 2, [], [], [])


class TestGenerators:
    def test_fem_has_dense_blocks(self):
        m = fem_matrix(20, 3, 4, 6, seed=0)
        dense = m.to_dense()
        # The diagonal node blocks are fully dense 3x3 tiles.
        for node in range(5):
            tile = dense[node * 3 : node * 3 + 3, node * 3 : node * 3 + 3]
            assert (tile != 0).all()

    def test_fem_deterministic(self):
        a = fem_matrix(10, 3, 4, 6, seed=5)
        b = fem_matrix(10, 3, 4, 6, seed=5)
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_fem_alignment(self):
        m = fem_matrix(10, 8, 3, 4, seed=1, block_alignment=8)
        assert m.n_rows == 80

    def test_scattered_has_diagonal(self):
        m = scattered_matrix(30, 100, seed=0)
        dense = m.to_dense()
        assert (np.diag(dense) != 0).all()

    def test_scattered_nnz_close_to_target(self):
        m = scattered_matrix(100, 600, seed=0)
        # Collisions shrink the count slightly; never exceed.
        assert 400 <= m.nnz <= 600


class TestTable4:
    def test_eleven_matrices(self):
        assert len(TABLE4) == 11
        assert len(MATRIX_NAMES) == 11

    def test_paper_metadata_matches_table(self):
        by_name = {info.name: info for info in TABLE4}
        assert by_name["pwtk"].paper_nnz == 5926171
        assert by_name["raefsky3"].paper_sparsity == pytest.approx(3.31e-3)
        assert by_name["memplus"].paper_dimension == 17758

    def test_suite_generates_all(self):
        suite = table4_suite(seed=0)
        assert set(suite) == set(MATRIX_NAMES)
        for matrix in suite.values():
            assert matrix.nnz > 0
            assert matrix.n_rows == matrix.n_cols

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            table4_matrix("nonexistent")

    def test_info_generate_matches_function(self):
        info = TABLE4[0]
        a = info.generate(seed=0)
        b = table4_matrix(info.name, seed=0)
        assert a.nnz == b.nnz

    def test_fem_matrices_blockable_without_fill(self):
        """FEM stand-ins have their natural block size: blocking at it adds
        (almost) no fill."""
        from repro.spmv import fill_ratio

        m = table4_matrix("nasasrb", seed=0)
        assert fill_ratio(m, 6, 6) < 1.05
        m = table4_matrix("3dtube", seed=0)
        assert fill_ratio(m, 3, 3) < 1.05

    def test_scattered_matrices_fill_heavily(self):
        from repro.spmv import fill_ratio

        m = table4_matrix("memplus", seed=0)
        assert fill_ratio(m, 4, 4) > 3.0

    def test_raefsky3_multiples_of_four(self):
        """Figure 12's observation: block columns 1, 4, 8 equally effective
        because fill stays at 1.0 on 4-aligned substructure."""
        from repro.spmv import fill_ratio

        m = table4_matrix("raefsky3", seed=0)
        assert fill_ratio(m, 8, 4) == pytest.approx(1.0, abs=0.02)
        assert fill_ratio(m, 8, 8) == pytest.approx(1.0, abs=0.02)
        assert fill_ratio(m, 8, 6) > 1.2
