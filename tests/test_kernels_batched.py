"""Property tests: the batched SoA kernels are exact replacements.

``repro.kernels.batched`` restructures the per-pair cache simulator,
stack-distance kernel, and analytic miss model so thousands of
(config, trace) pairs run in one numpy pass.  The retained per-pair
implementations are the reference oracles here; every batched result
must be **bit-identical** — miss counts, histograms, and the analytic
model's floats — across random geometries, streams, batch shapes
(including batch=1 and ragged stream lengths), and replacement policies.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.batched import (
    DIRECT_MIN,
    MAX_BATCH,
    expected_misses_batch,
    miss_counts_hierarchy_batch,
    simulate_caches,
    stack_distances_many,
    stack_distances_many_addresses,
)
from repro.profiling.reuse import COLD_DISTANCE, stack_distances_from_blocks
from repro.spmv import SetAssociativeCache
from repro.uarch.cachemodel import expected_misses, miss_counts_hierarchy

geometries = st.tuples(
    st.sampled_from([16, 32, 64, 128]),      # line bytes
    st.sampled_from([1, 2, 4, 8, 16]),       # ways
    st.sampled_from([1, 2, 4, 16, 64]),      # sets
    st.sampled_from(["LRU", "NMRU", "RND"]),
)

streams = st.tuples(
    st.integers(0, 2**31 - 1),               # stream seed
    st.integers(1, 800),                     # length (ragged, down to 1)
    st.sampled_from([8, 64, 512, 4096]),     # distinct lines
)


def _make_stream(seed, length, universe, line_bytes=64):
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=length) * line_bytes


class TestSimulateCachesEquivalence:
    @given(st.lists(geometries, min_size=1, max_size=8), streams)
    @settings(max_examples=50, deadline=None)
    def test_matches_per_pair_simulator(self, geoms, shape):
        """One batched pass == one fresh per-pair simulator per config,
        for any mix of policies and geometries on one stream."""
        addrs = _make_stream(*shape)
        specs = [
            (line * ways * sets, line, ways, policy)
            for line, ways, sets, policy in geoms
        ]
        batched = simulate_caches(addrs, specs, seed=7)
        for spec, got in zip(specs, batched):
            ref = SetAssociativeCache(*spec, seed=7).simulate(addrs)
            assert got == ref

    @given(geometries, streams)
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one(self, geom, shape):
        addrs = _make_stream(*shape)
        line, ways, sets, policy = geom
        spec = (line * ways * sets, line, ways, policy)
        assert list(simulate_caches(addrs, [spec], seed=3)) == [
            SetAssociativeCache(*spec, seed=3).simulate(addrs)
        ]

    def test_empty_stream_and_empty_batch(self):
        addrs = np.empty(0, dtype=np.int64)
        assert list(simulate_caches(addrs, [(1024, 64, 2, "LRU")])) == [0]
        assert len(simulate_caches(np.arange(10) * 64, [])) == 0

    def test_shared_geometry_configs_share_one_pass(self):
        """Many LRU sizes over one (line, sets) geometry still agree."""
        addrs = _make_stream(0, 5000, 512)
        specs = [(64 * ways * 16, 64, ways, "LRU") for ways in (1, 2, 4, 8, 16)]
        batched = simulate_caches(addrs, specs)
        refs = [SetAssociativeCache(*s).simulate(addrs) for s in specs]
        assert list(batched) == refs


class TestStackDistancesManyEquivalence:
    @given(st.lists(streams, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_matches_per_stream_kernel(self, shapes):
        """Concatenated multi-stream pass == per-stream passes, for
        ragged lengths (down to single-access streams)."""
        blocks = [_make_stream(*shape, line_bytes=1) for shape in shapes]
        batched = stack_distances_many(blocks)
        for stream, (distances, n_cold) in zip(blocks, batched):
            ref_d, ref_cold = stack_distances_from_blocks(stream)
            assert n_cold == ref_cold
            assert np.array_equal(distances, ref_d)

    @given(streams)
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one(self, shape):
        blocks = _make_stream(*shape, line_bytes=1)
        [(distances, n_cold)] = stack_distances_many([blocks])
        ref_d, ref_cold = stack_distances_from_blocks(blocks)
        assert n_cold == ref_cold
        assert np.array_equal(distances, ref_d)

    def test_chunking_boundary_is_invisible(self):
        """Streams straddling the MAX_BATCH chunk boundary still match:
        windows never cross stream boundaries."""
        rng = np.random.default_rng(5)
        blocks = [
            rng.integers(0, 256, size=n)
            for n in (MAX_BATCH // 2, MAX_BATCH // 2, 100, MAX_BATCH, 1)
        ]
        batched = stack_distances_many(blocks)
        for stream, (distances, n_cold) in zip(blocks, batched):
            ref_d, ref_cold = stack_distances_from_blocks(stream)
            assert n_cold == ref_cold
            assert np.array_equal(distances, ref_d)

    def test_direct_dispatch_boundary_is_invisible(self):
        """Long streams take the direct per-stream path; interleaving
        them with short concatenated streams changes nothing."""
        rng = np.random.default_rng(6)
        blocks = [
            rng.integers(0, 256, size=n)
            for n in (DIRECT_MIN - 1, DIRECT_MIN, 50, DIRECT_MIN + 1, 10)
        ]
        batched = stack_distances_many(blocks)
        for stream, (distances, n_cold) in zip(blocks, batched):
            ref_d, ref_cold = stack_distances_from_blocks(stream)
            assert n_cold == ref_cold
            assert np.array_equal(distances, ref_d)

    @given(st.lists(streams, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_address_variant_applies_block_ids(self, shapes):
        addr_streams = [_make_stream(*shape, line_bytes=8) for shape in shapes]
        batched = stack_distances_many_addresses(addr_streams, block_bytes=64)
        for addrs, (distances, n_cold) in zip(addr_streams, batched):
            ref_d, ref_cold = stack_distances_from_blocks(addrs // 64)
            assert n_cold == ref_cold
            assert np.array_equal(distances, ref_d)

    def test_cold_counts_consistent(self):
        blocks = [_make_stream(9, 500, 64, line_bytes=1)]
        [(distances, n_cold)] = stack_distances_many(blocks)
        assert int((distances == COLD_DISTANCE).sum()) == n_cold


class TestAnalyticModelEquivalence:
    @given(
        streams,
        st.lists(
            st.tuples(
                st.sampled_from([4, 16, 64, 256, 1024]),   # capacity blocks
                st.sampled_from([1, 2, 4, 8, 1024]),       # associativity
            ),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_expected_misses_bit_identical(self, shape, configs):
        """The batched analytic model reproduces the per-config floats
        exactly (same arithmetic on the same suffix slices)."""
        blocks = _make_stream(*shape, line_bytes=1)
        distances, _ = stack_distances_from_blocks(blocks)
        sorted_stack = np.sort(distances)
        capacities = np.array([c for c, _ in configs], dtype=np.int64)
        assocs = np.array([a for _, a in configs], dtype=np.int64)
        batched = expected_misses_batch(sorted_stack, capacities, assocs)
        for j, (capacity, assoc) in enumerate(configs):
            assert batched[j] == expected_misses(sorted_stack, capacity, assoc)

    @given(streams)
    @settings(max_examples=25, deadline=None)
    def test_hierarchy_bit_identical(self, shape):
        blocks = _make_stream(*shape, line_bytes=1)
        distances, _ = stack_distances_from_blocks(blocks)
        sorted_stack = np.sort(distances)
        l1_blocks = np.array([128, 256, 512], dtype=np.int64)
        l1_assoc = np.array([2, 4, 8], dtype=np.int64)
        l2_blocks = np.array([4096, 8192, 16384], dtype=np.int64)
        l2_assoc = np.array([8, 8, 16], dtype=np.int64)
        l1_batch, l2_batch = miss_counts_hierarchy_batch(
            sorted_stack, l1_blocks, l1_assoc, l2_blocks, l2_assoc
        )
        for j in range(3):
            l1_ref, l2_ref = miss_counts_hierarchy(
                sorted_stack,
                int(l1_blocks[j]),
                int(l1_assoc[j]),
                int(l2_blocks[j]),
                int(l2_assoc[j]),
            )
            assert l1_batch[j] == l1_ref
            assert l2_batch[j] == l2_ref

    def test_rejects_nonpositive_parameters(self):
        sorted_stack = np.array([1.0, 2.0])
        import pytest

        with pytest.raises(ValueError):
            expected_misses_batch(
                sorted_stack, np.array([0]), np.array([1])
            )
        with pytest.raises(ValueError):
            expected_misses_batch(
                sorted_stack, np.array([16]), np.array([0])
            )


class TestPipelineBatchEquivalence:
    """simulate_cpi_batch / run_trace_batch ride the kernels: spot-check
    bit-identity end-to-end on real generated inputs."""

    def test_cpi_batch_matches_per_config(self, astar_trace):
        from repro.uarch import Simulator, sample_configs
        from repro.uarch.pipeline import simulate_cpi_batch

        rng = np.random.default_rng(11)
        configs = sample_configs(16, rng)
        simulator = Simulator()
        shard = astar_trace.shards(2_000)[0]
        stats = simulator.stats_for(shard)
        batched = simulate_cpi_batch(stats, configs)
        for j, config in enumerate(configs):
            assert batched[j] == simulator.cpi(shard, config)

    def test_spmv_run_trace_batch_matches(self):
        from repro.spmv import sample_cache_configs, table4_matrix
        from repro.spmv.bcsr import to_bcsr
        from repro.spmv.kernel import kernel_trace
        from repro.spmv.machine import run_trace, run_trace_batch

        matrix = table4_matrix("memplus", seed=0)
        trace = kernel_trace(to_bcsr(matrix, 2, 2))
        rng = np.random.default_rng(13)
        caches = sample_cache_configs(8, rng)
        fill = 1.25
        batched = run_trace_batch(trace, fill, caches, seed=0)
        for cache, got in zip(caches, batched):
            assert got == run_trace(trace, fill, cache, seed=0)
