"""The backend contract: every timing backend passes the same suite.

This parametrizes the ``Simulator``-facing invariants of
``tests/test_uarch_model.py`` over all registered backends, so any
future backend added to :data:`repro.uarch.backends.BACKENDS` must
satisfy the surface the rest of the system (batched kernels, dataset
builders, GA search, serving tier) relies on:

* statistics caching and batched ``stats_for_many`` equivalence,
* positive deterministic CPI with component breakdowns that sum,
* bit-identical batched vs per-pair evaluation,
* ``cpi_matrix`` / ``application_cpi`` aggregation semantics,
* design-space constructor validation and distinct sampling,
* declared resource monotonicities (``Backend.better_dims``).
"""

import numpy as np
import pytest

from repro.uarch import BACKEND_NAMES, get_backend

from tests.test_uarch_gpu import _make_shard


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    return get_backend(request.param)


@pytest.fixture()
def simulator(backend):
    return backend.make_simulator()


@pytest.fixture(scope="module")
def shards():
    return [_make_shard(seed=s, n=300) for s in range(3)]


class TestConfigSpace:
    def test_reference_config_vector_shape(self, backend):
        config = backend.reference_config()
        vec = config.as_vector()
        assert vec.shape == (13,)
        assert np.isfinite(vec).all()
        assert config.key  # stable non-empty identifier

    def test_level_validation(self, backend):
        with pytest.raises(ValueError):
            backend.config_from_levels((0,) * 12)
        bad = [0] * 13
        bad[0] = backend.level_counts[0]
        with pytest.raises(ValueError):
            backend.config_from_levels(bad)

    def test_sampling_distinct(self, backend):
        configs = backend.sample_configs(20, np.random.default_rng(5))
        assert len(configs) == 20
        assert len({c.key for c in configs}) == 20

    def test_design_space_size(self, backend):
        assert backend.design_space_size == int(
            np.prod(backend.level_counts)
        )

    def test_labels_cover_all_13_variables(self, backend):
        assert set(backend.hardware_labels) == {
            f"y{i}" for i in range(1, 14)
        }


class TestSimulatorContract:
    def test_cpi_positive_and_deterministic(self, backend, simulator, shards):
        config = backend.reference_config()
        for shard in shards:
            cpi = simulator.cpi(shard, config)
            assert cpi > 0
            assert backend.make_simulator().cpi(shard, config) == cpi

    def test_breakdown_components_sum(self, backend, simulator, shards):
        config = backend.reference_config()
        b = simulator.breakdown(shards[0], config)
        assert b.core >= 0 and b.branch >= 0
        assert b.data_memory >= 0 and b.inst_memory >= 0
        assert b.total == b.core + b.branch + b.data_memory + b.inst_memory
        assert simulator.cpi(shards[0], config) == pytest.approx(
            b.total / len(shards[0])
        )

    def test_stats_cached_by_name(self, simulator, shards):
        a = simulator.stats_for(shards[0])
        b = simulator.stats_for(shards[0])
        assert a is b

    def test_stats_for_many_matches_per_shard(self, backend, shards):
        batched = backend.make_simulator().stats_for_many(shards)
        for shard, stats in zip(shards, batched):
            solo = backend.make_simulator().stats_for(shard)
            assert np.array_equal(stats.data_stack, solo.data_stack)
            assert np.array_equal(stats.inst_stack, solo.inst_stack)
            assert stats.dataflow_cycles == solo.dataflow_cycles

    def test_batch_bit_identical_to_per_pair(self, backend, simulator, shards):
        configs = backend.sample_configs(8, np.random.default_rng(11))
        batch = simulator.cpi_batch(shards[0], configs)
        per_pair = np.array([simulator.cpi(shards[0], c) for c in configs])
        assert np.array_equal(batch, per_pair)

    def test_cpi_matrix_shape_and_rows(self, backend, simulator, shards):
        configs = backend.sample_configs(4, np.random.default_rng(3))
        matrix = simulator.cpi_matrix(shards, configs)
        assert matrix.shape == (len(shards), len(configs))
        assert (matrix > 0).all()
        for i, shard in enumerate(shards):
            assert np.array_equal(matrix[i], simulator.cpi_batch(shard, configs))

    def test_application_cpi_is_mean_of_shards(self, backend, simulator, shards):
        config = backend.reference_config()
        expected = np.mean([simulator.cpi(s, config) for s in shards])
        assert simulator.application_cpi(shards, config) == pytest.approx(
            expected
        )

    def test_application_cpi_rejects_empty(self, backend, simulator):
        with pytest.raises(ValueError):
            simulator.application_cpi([], backend.reference_config())


class TestDeclaredMonotonicities:
    def test_better_dims_never_increase_cycles(self, backend, simulator, shards):
        """Each backend declares which level dimensions add resources;
        raising those levels must never slow the modeled machine."""
        stats = simulator.stats_for(shards[0])
        mid = tuple(count // 2 for count in backend.level_counts)
        for dim in backend.better_dims:
            totals = []
            for level in range(backend.level_counts[dim]):
                levels = tuple(
                    level if i == dim else lv for i, lv in enumerate(mid)
                )
                config = backend.config_from_levels(levels)
                totals.append(
                    simulator.breakdown_from_stats(stats, config).total
                )
            assert all(
                a >= b - 1e-9 * max(1.0, a)
                for a, b in zip(totals, totals[1:])
            ), f"dimension {dim} not monotone for backend {backend.name}: {totals}"


class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("tpu")

    def test_registry_names(self):
        assert BACKEND_NAMES == ("cpu", "gpu")
