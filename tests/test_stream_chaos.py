"""Chaos suite for the streaming subsystem's three fault sites.

``stream.checkpoint`` — a process killed at the checkpoint site (or
mid-flush inside the store write) must leave no torn state: recovery
restores the last published checkpoint exactly.  ``stream.ingest`` — an
ingest fault on the serving path degrades to a 500 with ``last_error``
recorded; the server keeps serving and the next batch succeeds.
``stream.respec`` — a failed background re-specification keeps the
last-good model in the slot and the registry; the drift latch re-triggers
and the retry completes.  ``stream.retune`` — a killed or failed
post-respec re-tune keeps the last-good (r, c, cache) tuning deployed
while the re-specification itself still lands.

Runs in the CI chaos matrix alongside ``test_serve_chaos.py`` with
``REPRO_CHAOS_SEED`` selecting the plan seed.
"""

import asyncio
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import faults, obs
from repro.faults import FaultPlan
from repro.store import Store
from repro.stream import DriftConfig, GramAccumulator
from repro.serve.bootstrap import (
    _app_records,
    attach_streaming,
    build_service,
    demo_dataset,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
REPO_ROOT = Path(__file__).resolve().parents[1]

TRIGGER_HAPPY = DriftConfig(
    window=8, min_fill=1, trip_ratio=1.05, clear_ratio=1.0, patience=1
)


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _profiles(n, seed):
    return [
        {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
        for p in _app_records("app0", n, np.random.default_rng(seed))
    ]


# -- stream.checkpoint: kill mid-checkpoint, recover untorn ----------------------------


class TestCheckpointCrashSafety:
    CODE = textwrap.dedent(
        """
        import numpy as np
        from types import SimpleNamespace
        from repro.store import Store
        from repro.stream import GramAccumulator

        stub = SimpleNamespace(fit_column_names=("a", "b"))
        acc = GramAccumulator(stub, name="chaos")
        acc.gram += np.eye(3)
        acc.moment += 1.0
        acc.rows, acc.batches = 3, 1
        acc.checkpoint(Store())          # ckpt 1 publishes cleanly
        acc.gram += np.eye(3)
        acc.moment += 1.0
        acc.rows, acc.batches = 6, 2
        acc.checkpoint(Store())          # the armed fault lands here
        """
    )

    def _run(self, root: Path, fault_spec: str):
        env = dict(
            os.environ,
            REPRO_STORE_DIR=str(root),
            PYTHONPATH=str(REPO_ROOT / "src"),
        )
        if fault_spec:
            env["REPRO_FAULTS"] = f"{CHAOS_SEED}:{fault_spec}"
        else:
            env.pop("REPRO_FAULTS", None)
        return subprocess.run(
            [sys.executable, "-c", self.CODE], env=env, capture_output=True
        )

    def _assert_recovers_first_checkpoint(self, root: Path):
        from types import SimpleNamespace

        store = Store(root)
        acc = GramAccumulator(
            SimpleNamespace(fit_column_names=("a", "b")), name="chaos"
        )
        assert acc.recover(store)
        assert (acc.rows, acc.batches, acc.seq) == (3, 1, 1)
        np.testing.assert_array_equal(acc.gram, np.eye(3))
        np.testing.assert_array_equal(acc.moment, np.ones(3))
        # No torn state is *visible*: exactly one published checkpoint.
        # (A kill inside the store write may orphan a ``.tmp-<pid>`` file;
        # its name never matches the checkpoint pattern, so recovery and
        # pruning ignore it by construction.)
        ckpt_dir = root / "stream" / "chaos" / "ckpt"
        published = [
            p for p in ckpt_dir.iterdir() if not p.name.count(".tmp-")
        ]
        assert len(published) == 1
        assert published[0].name.startswith("00000001-")

    def test_kill_at_checkpoint_site_recovers_previous(self, tmp_path):
        """Killed before the second checkpoint's write: recovery restores
        checkpoint 1 exactly."""
        root = tmp_path / "store"
        proc = self._run(root, "stream.checkpoint=kill@2")
        assert proc.returncode != 0
        self._assert_recovers_first_checkpoint(root)

    def test_kill_mid_flush_recovers_previous(self, tmp_path):
        """Killed inside the store write (bytes durable in the temp file,
        rename not yet done): the second checkpoint must not be visible
        and checkpoint 1 recovers."""
        root = tmp_path / "store"
        proc = self._run(root, "store.flush=kill@2")
        assert proc.returncode != 0
        self._assert_recovers_first_checkpoint(root)

    def test_fault_free_run_publishes_both(self, tmp_path):
        root = tmp_path / "store"
        proc = self._run(root, "")
        assert proc.returncode == 0, proc.stderr.decode()
        from types import SimpleNamespace

        acc = GramAccumulator(
            SimpleNamespace(fit_column_names=("a", "b")), name="chaos"
        )
        assert acc.recover(Store(root))
        assert (acc.rows, acc.batches, acc.seq) == (6, 2, 2)


# -- stream.ingest / stream.respec on the serving path ---------------------------------


@pytest.fixture()
def streaming_service(tmp_path):
    server, serving, registry = build_service(
        demo_dataset(seed=0),
        tmp_path / "registry",
        generations=1,
        update_generations=1,
        population_size=6,
    )
    respec = attach_streaming(serving, drift_config=TRIGGER_HAPPY)
    yield serving, registry, respec
    serving.close()


class TestIngestFaults:
    def test_ingest_fault_degrades_to_500_and_recovers(self, streaming_service):
        serving, registry, respec = streaming_service
        # A roomy baseline so ordinary batches refresh instead of tripping.
        respec.set_baseline(10.0)

        async def scenario():
            plan = FaultPlan.parse("stream.ingest=raise@1", seed=CHAOS_SEED)
            with faults.armed(plan):
                reply = await serving.handle_observe_stream(
                    {"application": "app0", "profiles": _profiles(8, seed=21)}
                )
            assert plan.injected_counts() == [1]
            assert reply["ok"] is False and reply["status"] == 500
            assert "InjectedFault" in reply["error"]
            assert serving.stats.stream_failed == 1
            assert serving.stats.last_error.startswith("InjectedFault")
            assert obs.gauge("serve.update_last_error").value == 1.0
            # The faulted batch was not half-ingested anywhere.
            assert respec.batches_ingested == 0
            assert serving.stats_dict()["stream"]["failed"] == 1

            # Fault exhausted: the very next batch streams through.
            reply = await serving.handle_observe_stream(
                {"application": "app0", "profiles": _profiles(8, seed=22)}
            )
            assert reply["ok"]
            assert respec.batches_ingested == 1
            assert serving.stats.stream_batches == 1

        asyncio.run(scenario())


class TestRespecFaults:
    def test_failed_respec_keeps_last_good_model_then_retries(
        self, streaming_service
    ):
        serving, registry, respec = streaming_service
        respec.set_baseline(1e-6)  # any real error trips the detector

        async def scenario():
            v_before = serving.slot.version
            plan = FaultPlan.parse("stream.respec=raise@1", seed=CHAOS_SEED)
            with faults.armed(plan):
                reply = await serving.handle_observe_stream(
                    {"application": "app0", "profiles": _profiles(8, seed=31)}
                )
                assert reply["ok"] and reply["respec_scheduled"]
                await serving.wait_for_update()
            assert plan.injected_counts() == [1]

            # Degraded, not down: slot and registry keep the last-good
            # model, the failure is visible in stats and the gauge.
            assert serving.stats.updates_failed == 1
            assert serving.stats.stream_respecs == 0
            assert serving.stats.last_error.startswith("InjectedFault")
            assert obs.gauge("serve.update_last_error").value == 1.0
            assert serving.slot.version == v_before
            assert registry.latest_version(serving.key) == v_before

            # The drift latch is still set, so the next batch re-schedules
            # the re-specification; fault exhausted, it completes and swaps.
            reply = await serving.handle_observe_stream(
                {"application": "app0", "profiles": _profiles(8, seed=32)}
            )
            assert reply["ok"] and reply["respec_scheduled"]
            await serving.wait_for_update()
            assert serving.stats.stream_respecs == 1
            assert serving.stats.last_error is None
            assert obs.gauge("serve.update_last_error").value == 0.0
            assert serving.slot.version == v_before + 1
            assert registry.latest_version(serving.key) == v_before + 1

        asyncio.run(scenario())


# -- stream.retune: killed/failed re-tune keeps the last-good tuning -------------------


def _retune_fixture(seed=2):
    """A tiny SpMV respecifier with an attached retuner (no serving tier)."""
    from repro.core.dataset import ProfileDataset
    from repro.core.genetic import GeneticSearch
    from repro.spmv import fem_matrix, scattered_matrix
    from repro.spmv.cache import SPMV_HARDWARE_NAMES
    from repro.spmv.space import SPMV_SOFTWARE_NAMES
    from repro.stream import OnlineRetuner, SpMVStreamSource, StreamingRespecifier

    source = SpMVStreamSource(
        fem_matrix(16, 3, 3, 6, 13, "chaos-retune"),
        seed=5,
        block_sizes=(1, 2, 3),
        n_caches=4,
    )
    dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
    rng = np.random.default_rng(7)
    aux = SpMVStreamSource(
        scattered_matrix(40, 130, 12, "chaos-aux"),
        seed=3,
        block_sizes=(1, 2, 3),
        n_caches=4,
    )
    dataset.extend(aux.sample(24, rng).records)
    dataset.extend(source.sample(24, rng).records)
    respec = StreamingRespecifier(
        dataset, GeneticSearch(population_size=8, seed=seed), TRIGGER_HAPPY
    )
    respec.bootstrap(generations=1)
    retuner = OnlineRetuner(
        lambda: source.space, source.caches, block_sizes=source.block_sizes
    ).attach(respec)
    retuner.bootstrap()
    return source, respec, retuner


class TestRetuneFaults:
    def test_failed_retune_keeps_last_good_tuning_and_respec_lands(self):
        """The re-specification must survive its own retune hook failing:
        the new model is adopted, the deployed tuning stays last-good,
        and the next re-tune clears the sticky error."""
        source, respec, retuner = _retune_fixture()
        initial = retuner.current.key
        plan = FaultPlan.parse("stream.retune=raise@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            respec.respec(generations=1)
        assert plan.injected_counts() == [1]

        # The respec itself landed; the retune failure was absorbed.
        assert respec.respecs == 1
        assert retuner.failures == 1
        assert retuner.retunes == 0
        assert retuner.last_error.startswith("InjectedFault")
        assert retuner.decisions[-1].action == "error"
        assert retuner.current.key == initial  # last-good tuning deployed

        # Fault exhausted: the next re-specification re-tunes cleanly.
        respec.respec(generations=1)
        assert respec.respecs == 2
        assert retuner.retunes == 1
        assert retuner.last_error is None
        assert retuner.decisions[-1].action in ("hold", "switch")

    def test_retune_failure_surfaces_in_serving_stats(self):
        """Through the stats nesting: a manager polling stats_dict sees
        the failure count and the untouched current tuning."""
        source, respec, retuner = _retune_fixture()
        initial = retuner.current.key
        plan = FaultPlan.parse("stream.retune=raise@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            respec.respec(generations=1)
        stats = respec.stats_dict()["retune"]
        assert stats["failures"] == 1
        assert stats["last_error"].startswith("InjectedFault")
        assert (
            f"{stats['current']['r']}x{stats['current']['c']}"
            f"/{stats['current']['cache']}" == initial
        )

    KILL_CODE = textwrap.dedent(
        """
        import numpy as np
        from repro.spmv import fem_matrix
        from repro.stream import OnlineRetuner, SpMVStreamSource

        source = SpMVStreamSource(
            fem_matrix(16, 3, 3, 6, 13, "chaos-retune"),
            seed=5, block_sizes=(1, 2, 3), n_caches=4,
        )
        retuner = OnlineRetuner(
            lambda: source.space, source.caches, block_sizes=source.block_sizes
        )
        state = retuner.bootstrap()
        print(f"deployed {state.key}", flush=True)
        decision = retuner.retune(None, "respec")   # the armed kill lands here
        print(f"retuned {decision.action} {retuner.current.key}", flush=True)
        """
    )

    def _run_kill_scenario(self, fault_spec):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        if fault_spec:
            env["REPRO_FAULTS"] = f"{CHAOS_SEED}:{fault_spec}"
        else:
            env.pop("REPRO_FAULTS", None)
        return subprocess.run(
            [sys.executable, "-c", self.KILL_CODE],
            env=env,
            capture_output=True,
            text=True,
        )

    def test_killed_retune_dies_after_deploying_last_good(self):
        """A kill inside the re-tune takes the process down with the
        distinctive exit code *after* the bootstrap tuning was deployed —
        a supervisor respawn comes back on the last-good tuning."""
        from repro.faults.plan import KILL_EXIT_CODE

        proc = self._run_kill_scenario("stream.retune=kill@1")
        assert proc.returncode == KILL_EXIT_CODE
        assert "deployed " in proc.stdout     # last-good was in force
        assert "retuned" not in proc.stdout   # the re-tune never concluded

    def test_same_scenario_completes_without_fault(self):
        proc = self._run_kill_scenario(None)
        assert proc.returncode == 0
        assert "deployed " in proc.stdout
        assert "retuned" in proc.stdout


# -- uarch.backend: guarded backend evaluation degrades to last-good -------------------


def _tiny_shards(n_shards=2, n=300, seed=11):
    """A couple of cheap synthetic trace shards for backend evaluation."""
    from repro.isa import OpClass, Trace, empty_trace

    rng = np.random.default_rng(seed)
    shards = []
    for k in range(n_shards):
        data = empty_trace(n)
        data["op"] = rng.choice(
            [int(OpClass.INT_ALU), int(OpClass.MEMORY), int(OpClass.CONTROL)],
            size=n,
            p=[0.6, 0.3, 0.1],
        )
        mem = data["op"] == int(OpClass.MEMORY)
        data["addr"][mem] = rng.integers(0, 500, size=int(mem.sum())) * 64
        data["iaddr"] = (np.arange(n) * 4) % 2048
        data["dep"] = rng.integers(0, 6, size=n)
        shards.append(Trace(data, f"chaos-backend-{seed}-{k}"))
    return shards


class TestBackendFaults:
    @pytest.mark.parametrize("backend", ["cpu", "gpu"])
    def test_backend_fault_replays_last_good(self, backend):
        """A faulted evaluation replays the previous result (marked
        ``fresh=False``) instead of poisoning the caller; the fault is
        visible in the failure counters and the next call is fresh."""
        from repro.uarch import GuardedBackend

        guard = GuardedBackend(backend)
        rng = np.random.default_rng(3)
        good_cfg, other_cfg = guard.backend.sample_configs(2, rng)
        shards = _tiny_shards()
        primed = guard.evaluate(shards, good_cfg)
        assert primed.fresh and primed.config_key == good_cfg.key

        plan = FaultPlan.parse("uarch.backend=raise@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            degraded = guard.evaluate(shards, other_cfg)
        assert plan.injected_counts() == [1]
        assert degraded.fresh is False
        assert degraded.backend == backend
        # The replay answers with the *last-good* configuration's CPIs,
        # not the one that was asked for — callers can tell from the key.
        assert degraded.config_key == good_cfg.key
        np.testing.assert_array_equal(degraded.cpis, primed.cpis)
        assert guard.failures == 1
        assert guard.last_error.startswith("InjectedFault")

        # Fault exhausted: the next evaluation is fresh and becomes the
        # new last-good.
        after = guard.evaluate(shards, other_cfg)
        assert after.fresh and after.config_key == other_cfg.key
        assert guard.evaluations == 2

    def test_backend_fault_before_first_success_raises(self):
        """No last-good yet means there is nothing safe to degrade to."""
        from repro.uarch import GuardedBackend
        from repro.uarch.backends import BackendUnavailableError

        guard = GuardedBackend("gpu")
        plan = FaultPlan.parse("uarch.backend=raise@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            with pytest.raises(BackendUnavailableError):
                guard.evaluate(_tiny_shards(), guard.backend.reference_config())
        assert guard.failures == 1 and guard.evaluations == 0

    KILL_CODE = textwrap.dedent(
        """
        import numpy as np
        from repro.isa import OpClass, Trace, empty_trace
        from repro.uarch import GuardedBackend

        rng = np.random.default_rng(11)
        data = empty_trace(300)
        data["op"] = rng.choice(
            [int(OpClass.INT_ALU), int(OpClass.MEMORY), int(OpClass.CONTROL)],
            size=300, p=[0.6, 0.3, 0.1],
        )
        mem = data["op"] == int(OpClass.MEMORY)
        data["addr"][mem] = rng.integers(0, 500, size=int(mem.sum())) * 64
        data["iaddr"] = (np.arange(300) * 4) % 2048
        data["dep"] = rng.integers(0, 6, size=300)
        shards = [Trace(data, "chaos-backend-kill")]

        guard = GuardedBackend("gpu")
        config = guard.backend.reference_config()
        guard.evaluate(shards, config)
        print("primed", flush=True)
        guard.evaluate(shards, config)    # the armed kill lands here
        print("second evaluation done", flush=True)
        """
    )

    def _run_kill_scenario(self, fault_spec):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        if fault_spec:
            env["REPRO_FAULTS"] = f"{CHAOS_SEED}:{fault_spec}"
        else:
            env.pop("REPRO_FAULTS", None)
        return subprocess.run(
            [sys.executable, "-c", self.KILL_CODE],
            env=env,
            capture_output=True,
            text=True,
        )

    def test_killed_backend_evaluation_dies_with_last_good_on_record(self):
        """A kill inside the backend evaluation takes the process down
        with the distinctive exit code after the first evaluation primed
        the last-good — a supervisor respawn re-evaluates from scratch
        rather than serving torn statistics."""
        from repro.faults.plan import KILL_EXIT_CODE

        proc = self._run_kill_scenario("uarch.backend=kill@2")
        assert proc.returncode == KILL_EXIT_CODE
        assert "primed" in proc.stdout
        assert "second evaluation done" not in proc.stdout

    def test_same_backend_scenario_completes_without_fault(self):
        proc = self._run_kill_scenario(None)
        assert proc.returncode == 0, proc.stderr
        assert "primed" in proc.stdout
        assert "second evaluation done" in proc.stdout
