"""Micro-batching equivalence and queue discipline.

The central property: for ANY interleaving of request arrivals and any
batch-size/latency configuration, every micro-batched response is
bit-identical to the sequential ``predict_one`` call for the same row.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InferredModel, ModelSpec, TransformKind
from repro.serve import BatchConfig, MicroBatcher, ModelSlot, QueueFullError
from repro.serve.bootstrap import demo_dataset

N_X = 3  # demo dataset layout: 3 software + 2 hardware variables
N_Y = 2

_MODEL = None


def served_model() -> InferredModel:
    global _MODEL
    if _MODEL is None:
        ds = demo_dataset(n_apps=3, n_per_app=25, seed=7)
        spec = ModelSpec(
            transforms={
                "x1": TransformKind.LINEAR,
                "x2": TransformKind.QUADRATIC,
                "x3": TransformKind.SPLINE,
                "y1": TransformKind.LINEAR,
                "y2": TransformKind.LINEAR,
            },
            interactions=frozenset({("x1", "y1"), ("x2", "y2")}),
        )
        _MODEL = InferredModel.fit(spec, ds)
    return _MODEL


def expected(row: np.ndarray) -> float:
    return served_model().predict_one(row[:N_X], row[N_X:])


feature = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)
row_strategy = st.lists(feature, min_size=N_X + N_Y, max_size=N_X + N_Y).map(
    lambda vals: np.asarray(vals, dtype=float)
)
# An interleaving: waves of concurrent arrivals, optionally separated by a
# pause longer than the batching tick (so ticks close between waves).
wave_strategy = st.lists(
    st.tuples(
        st.lists(row_strategy, min_size=1, max_size=6),
        st.booleans(),  # pause after this wave?
    ),
    min_size=1,
    max_size=4,
)


class TestBatchedEquivalence:
    @given(waves=wave_strategy, max_batch=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_any_interleaving_bit_identical(self, waves, max_batch):
        model = served_model()
        config = BatchConfig(max_batch=max_batch, max_latency_s=0.001)

        async def scenario():
            slot = ModelSlot(model, version=1)
            batcher = MicroBatcher(slot, config)
            batcher.start()
            try:
                tasks = []
                for rows, pause in waves:
                    tasks.extend(
                        asyncio.ensure_future(batcher.submit(row))
                        for row in rows
                    )
                    # Let the submissions actually enqueue ...
                    await asyncio.sleep(0)
                    if pause:  # ... and optionally let the tick close.
                        await asyncio.sleep(0.003)
                return await asyncio.gather(*tasks)
            finally:
                await batcher.close()

        results = asyncio.run(scenario())
        flat_rows = [row for rows, _ in waves for row in rows]
        assert len(results) == len(flat_rows)
        for row, (prediction, version) in zip(flat_rows, results):
            assert version == 1
            assert prediction == expected(row), (
                f"batched {prediction!r} != sequential {expected(row)!r} "
                f"for row {row!r}"
            )

    def test_saturated_queue_batches_fill_to_max(self):
        model = served_model()
        config = BatchConfig(max_batch=4, max_latency_s=0.001)

        async def scenario():
            slot = ModelSlot(model, version=1)
            batcher = MicroBatcher(slot, config)
            rows = [np.ones(N_X + N_Y) * (0.1 + 0.01 * i) for i in range(16)]
            tasks = [asyncio.ensure_future(batcher.submit(r)) for r in rows]
            batcher.start()
            results = await asyncio.gather(*tasks)
            await batcher.close()
            return results, batcher.stats

        results, stats = asyncio.run(scenario())
        assert stats.occupancy == {4: 4}  # 16 queued-before-start → 4 full ticks
        for (prediction, _), row in zip(
            results, [np.ones(N_X + N_Y) * (0.1 + 0.01 * i) for i in range(16)]
        ):
            assert prediction == expected(row)


class TestQueueDiscipline:
    def test_queue_full_rejects(self):
        model = served_model()
        config = BatchConfig(max_batch=2, max_latency_s=0.01, queue_depth=4)

        async def scenario():
            slot = ModelSlot(model, version=1)
            batcher = MicroBatcher(slot, config)  # never started: queue only fills
            row = np.ones(N_X + N_Y)
            tasks = [asyncio.ensure_future(batcher.submit(row)) for _ in range(4)]
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                await batcher.submit(row)
            assert batcher.stats.rejected == 1
            for t in tasks:
                t.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run(scenario())

    def test_timed_out_requests_do_not_occupy_batch_rows(self):
        model = served_model()
        config = BatchConfig(
            max_batch=8, max_latency_s=0.005, request_timeout_s=0.001
        )

        async def scenario():
            slot = ModelSlot(model, version=1)
            batcher = MicroBatcher(slot, config)
            row = np.ones(N_X + N_Y)
            # Submit without the batcher running: the waiter times out first.
            task = asyncio.ensure_future(batcher.submit(row))
            await asyncio.sleep(0.01)
            batcher.start()
            await asyncio.sleep(0.02)
            await batcher.close()
            with pytest.raises(Exception):
                task.result()
            return batcher.stats

        stats = asyncio.run(scenario())
        assert stats.timed_out == 1
        assert stats.requests == 0  # the dead request was dropped, not predicted

    def test_model_slot_rejects_non_monotonic_versions(self):
        model = served_model()
        slot = ModelSlot(model, version=3)
        with pytest.raises(ValueError, match="must increase"):
            slot.swap(3, model)
        with pytest.raises(ValueError, match="must increase"):
            slot.swap(2, model)
        slot.swap(4, model)
        assert slot.version == 4
