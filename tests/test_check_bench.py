"""Unit tests for the CI benchmark-regression gate.

The ISSUE acceptance case: ``scripts/check_bench.py`` must exit non-zero
when fed a BENCH file degraded beyond tolerance, and zero on an
unchanged (or improved) report.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    Path(__file__).resolve().parents[1] / "scripts" / "check_bench.py",
)
check_bench = importlib.util.module_from_spec(_SPEC)
sys.modules["check_bench"] = check_bench
_SPEC.loader.exec_module(check_bench)

BASELINE = {
    "smoke": True,
    "kernels": {
        "cache_sim": {
            "speedup": 20.0,
            "after_ops_per_sec": 2_000_000.0,
            "before_ops_per_sec": 100_000.0,
            "misses": 7631,
            "n_ops": 10_000,
        },
    },
    "load": {
        "throughput_rps": 2000.0,
        "latency_ms": {"p50": 3.0, "p99": 4.0, "max": 5.0},
        "requests": 2000,
    },
    "obs_overhead": {"overhead_fraction": 0.01},
}


def _write_pair(tmp_path: Path, current: dict) -> tuple:
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir(exist_ok=True)
    current_dir.mkdir(exist_ok=True)
    (baseline_dir / "BENCH_unit.json").write_text(json.dumps(BASELINE))
    (current_dir / "BENCH_unit.json").write_text(json.dumps(current))
    return baseline_dir, current_dir


def _run(baseline_dir: Path, current_dir: Path, *extra: str) -> int:
    return check_bench.main(
        [
            "--baseline-dir",
            str(baseline_dir),
            "--current-dir",
            str(current_dir),
            *extra,
        ]
    )


class TestGate:
    def test_identical_report_passes(self, tmp_path):
        assert _run(*_write_pair(tmp_path, BASELINE)) == 0

    def test_degraded_speedup_fails(self, tmp_path, capsys):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["speedup"] = 10.0  # -50% < -25%
        assert _run(*_write_pair(tmp_path, current)) == 1
        out = capsys.readouterr().out
        assert "kernels.cache_sim.speedup" in out  # failing metric named

    def test_degraded_latency_fails(self, tmp_path, capsys):
        current = copy.deepcopy(BASELINE)
        current["load"]["latency_ms"]["p50"] = 6.0  # +100% > +25%
        assert _run(*_write_pair(tmp_path, current)) == 1
        assert "load.latency_ms.p50" in capsys.readouterr().out

    def test_tail_percentiles_get_double_headroom(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["load"]["latency_ms"]["p99"] = 5.6  # +40%: within 2x25%
        assert _run(*_write_pair(tmp_path, current)) == 0
        current["load"]["latency_ms"]["p99"] = 8.0  # +100%: beyond 2x25%
        assert _run(*_write_pair(tmp_path, current)) == 1

    def test_max_latency_is_informational(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["load"]["latency_ms"]["max"] = 500.0  # single worst sample
        assert _run(*_write_pair(tmp_path, current)) == 0

    def test_degradation_within_tolerance_passes(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["speedup"] = 16.0  # -20% ok at 25%
        current["load"]["latency_ms"]["p50"] = 3.6  # +20% ok at 25%
        assert _run(*_write_pair(tmp_path, current)) == 0

    def test_tolerance_flag_tightens_the_gate(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["speedup"] = 16.0  # -20%
        dirs = _write_pair(tmp_path, current)
        assert _run(*dirs, "--tolerance", "0.1") == 1
        assert _run(*dirs, "--tolerance", "0.25") == 0

    def test_tolerance_env_override(self, tmp_path, monkeypatch):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["speedup"] = 16.0  # -20%
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.1")
        assert _run(*_write_pair(tmp_path, current)) == 1

    def test_improvement_never_fails(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["speedup"] = 100.0
        current["load"]["latency_ms"]["p99"] = 0.5
        assert _run(*_write_pair(tmp_path, current)) == 0

    def test_informational_counts_never_gate(self, tmp_path):
        current = copy.deepcopy(BASELINE)
        current["kernels"]["cache_sim"]["misses"] = 1  # count, not perf
        current["load"]["requests"] = 1
        assert _run(*_write_pair(tmp_path, current)) == 0

    def test_missing_metric_fails(self, tmp_path, capsys):
        current = copy.deepcopy(BASELINE)
        del current["load"]["throughput_rps"]
        assert _run(*_write_pair(tmp_path, current)) == 1
        assert "load.throughput_rps missing" in capsys.readouterr().out

    def test_missing_current_report_fails(self, tmp_path):
        baseline_dir, current_dir = _write_pair(tmp_path, BASELINE)
        (current_dir / "BENCH_unit.json").unlink()
        assert _run(baseline_dir, current_dir) == 1

    def test_smoke_flag_mismatch_fails(self, tmp_path, capsys):
        current = copy.deepcopy(BASELINE)
        current["smoke"] = False  # full run against a smoke baseline
        assert _run(*_write_pair(tmp_path, current)) == 1
        assert "smoke" in capsys.readouterr().out

    def test_no_baselines_is_an_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert _run(empty, empty) == 2


class TestClassify:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("kernels.cache_sim.speedup", "higher"),
            ("kernels.cache_sim.after_ops_per_sec", "higher"),
            ("load.throughput_rps", "higher"),
            ("search.memo_hit_rate", "higher"),
            ("load.mean_batch_occupancy", "higher"),
            ("search.engine_seconds", "lower"),
            ("load.latency_ms.p99", "lower"),
            ("load.latency_ms.max", "info"),
            ("obs_overhead.overhead_fraction", "info"),
            ("kernels.cache_sim.misses", "info"),
            ("load.requests", "info"),
            ("live_update.version_after", "info"),
            # The sharded BENCH_serve.json additions: fleet aggregates
            # gate, per-shard splits and host-dependent parallelism don't.
            ("sharded.load.throughput_rps", "higher"),
            ("sharded.per_shard.0.throughput_rps", "info"),
            ("sharded.per_shard.2.mean_batch_occupancy", "info"),
            ("sharded.per_shard.1.latency_ms.p50", "info"),
            ("sharded.speedup_vs_single", "info"),
            ("sharded.cores", "info"),
            ("sharded.shards", "info"),
        ],
    )
    def test_direction(self, path, expected):
        assert check_bench.classify(path) == expected


class TestShardedSchema:
    """The gate reads old and new BENCH_serve.json layouts side by side."""

    SHARDED = {
        "shards": 2,
        "cores": 1,
        "mode": "reuse_port",
        "load": {
            "throughput_rps": 3000.0,
            "latency_ms": {"p50": 2.0, "p99": 5.0, "max": 9.0},
            "requests": 4000,
        },
        "speedup_vs_single": 1.5,
        "per_shard": {
            "0": {"throughput_rps": 1500.0, "mean_batch_occupancy": 1.2},
            "1": {"throughput_rps": 1500.0, "mean_batch_occupancy": 1.1},
        },
    }

    def _with_sharded(self, sharded: dict) -> dict:
        report = copy.deepcopy(BASELINE)
        report["sharded"] = copy.deepcopy(sharded)
        return report

    def test_old_baseline_ignores_new_sharded_section(self, tmp_path):
        """An old baseline (no ``sharded`` key) still gates the old keys
        of a new-schema report — extra current-side keys never fail."""
        assert _run(*_write_pair(tmp_path, self._with_sharded(self.SHARDED))) == 0

    def test_fleet_throughput_gates(self, tmp_path, capsys):
        baseline_dir, current_dir = _write_pair(
            tmp_path, self._with_sharded(self.SHARDED)
        )
        (baseline_dir / "BENCH_unit.json").write_text(
            json.dumps(self._with_sharded(self.SHARDED))
        )
        degraded = self._with_sharded(self.SHARDED)
        degraded["sharded"]["load"]["throughput_rps"] = 1000.0  # -66%
        (current_dir / "BENCH_unit.json").write_text(json.dumps(degraded))
        assert _run(baseline_dir, current_dir) == 1
        assert "sharded.load.throughput_rps" in capsys.readouterr().out

    def test_per_shard_and_speedup_never_gate(self, tmp_path):
        """Per-shard splits (kernel balancing luck) and speedup_vs_single
        (host parallelism) may swing arbitrarily without failing CI."""
        baseline_dir, current_dir = _write_pair(
            tmp_path, self._with_sharded(self.SHARDED)
        )
        (baseline_dir / "BENCH_unit.json").write_text(
            json.dumps(self._with_sharded(self.SHARDED))
        )
        skewed = self._with_sharded(self.SHARDED)
        skewed["sharded"]["per_shard"]["0"]["throughput_rps"] = 1.0
        skewed["sharded"]["per_shard"]["1"]["throughput_rps"] = 2999.0
        skewed["sharded"]["speedup_vs_single"] = 0.1
        skewed["sharded"]["cores"] = 64
        (current_dir / "BENCH_unit.json").write_text(json.dumps(skewed))
        assert _run(baseline_dir, current_dir) == 0


class TestMetricsJsonl:
    def test_good_dump_passes(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            json.dumps({"type": "counter", "name": "a", "value": 3}) + "\n"
            + json.dumps({"type": "gauge", "name": "b", "value": 1.0}) + "\n"
        )
        assert check_bench.check_metrics_jsonl(path) == []

    def test_missing_dump_fails(self, tmp_path):
        assert check_bench.check_metrics_jsonl(tmp_path / "nope.jsonl")

    def test_empty_dump_fails(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("")
        assert check_bench.check_metrics_jsonl(path)

    def test_all_zero_counters_fail(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            json.dumps({"type": "counter", "name": "a", "value": 0}) + "\n"
        )
        assert check_bench.check_metrics_jsonl(path)

    def test_garbage_dump_fails(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("not json\n")
        assert check_bench.check_metrics_jsonl(path)
