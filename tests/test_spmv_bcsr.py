"""Unit and property tests for BCSR blocking (the paper's Figure 11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import SparseMatrix, fill_ratio, to_bcsr

FIGURE11 = np.array(
    [
        [1, 2, 0, 0, 0, 0],
        [3, 4, 0, 0, 5, 6],
        [0, 0, 7, 0, 8, 9],
        [0, 0, 0, 10, 11, 12],
    ],
    dtype=float,
)


sparse_matrices = st.builds(
    lambda n, m, entries: _build(n, m, entries),
    st.integers(1, 12),
    st.integers(1, 12),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11), st.floats(0.5, 9.0)),
        max_size=40,
    ),
)


def _build(n, m, entries):
    rows = [r % n for r, _, _ in entries]
    cols = [c % m for _, c, _ in entries]
    vals = [v for *_, v in entries]
    return SparseMatrix(n, m, np.array(rows, dtype=np.int64),
                        np.array(cols, dtype=np.int64), np.array(vals))


class TestFigure11:
    """The paper's worked BCSR example, exactly."""

    def test_row_start(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        assert b.b_row_start.tolist() == [0, 2, 4]

    def test_col_idx(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        assert b.b_col_idx.tolist() == [0, 4, 2, 4]

    def test_values_with_explicit_zeros(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        expected = [1, 2, 3, 4, 0, 0, 5, 6, 7, 0, 0, 10, 8, 9, 11, 12]
        assert b.b_value.tolist() == [float(v) for v in expected]

    def test_four_filled_zeros(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        assert b.stored_values - b.original_nnz == 4
        assert b.fill_ratio == pytest.approx(16 / 12)


class TestToBcsr:
    def test_block_size_validated(self):
        m = SparseMatrix.from_dense(FIGURE11)
        with pytest.raises(ValueError):
            to_bcsr(m, 0, 2)
        with pytest.raises(ValueError):
            to_bcsr(m, 2, 9)

    def test_1x1_is_csr(self):
        m = SparseMatrix.from_dense(FIGURE11)
        b = to_bcsr(m, 1, 1)
        assert b.fill_ratio == 1.0
        assert b.n_blocks == m.nnz

    def test_non_divisible_dimensions_padded(self):
        m = SparseMatrix.from_dense(np.array([[1.0, 2.0, 3.0]]))
        b = to_bcsr(m, 2, 2)
        assert b.n_block_rows == 1
        assert np.allclose(b.matvec(np.ones(3)), m.matvec(np.ones(3)))

    def test_fill_ratio_function_matches_materialized(self):
        m = SparseMatrix.from_dense(FIGURE11)
        for r, c in [(1, 1), (2, 2), (3, 2), (4, 4)]:
            assert fill_ratio(m, r, c) == pytest.approx(to_bcsr(m, r, c).fill_ratio)

    @given(sparse_matrices, st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_matrix(self, matrix, r, c):
        b = to_bcsr(matrix, r, c)
        assert np.allclose(b.to_csr().to_dense(), matrix.to_dense())

    @given(sparse_matrices, st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_matvec_equals_csr(self, matrix, r, c):
        rng = np.random.default_rng(7)
        u = rng.normal(size=matrix.n_cols)
        b = to_bcsr(matrix, r, c)
        assert np.allclose(b.matvec(u), matrix.matvec(u), atol=1e-9)

    @given(sparse_matrices, st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_fill_ratio_at_least_one(self, matrix, r, c):
        if matrix.nnz == 0:
            return
        assert fill_ratio(matrix, r, c) >= 1.0 - 1e-12

    @given(sparse_matrices)
    @settings(max_examples=40, deadline=None)
    def test_fill_grows_with_block_area_on_average(self, matrix):
        if matrix.nnz == 0:
            return
        small = fill_ratio(matrix, 1, 1)
        large = fill_ratio(matrix, 8, 8)
        assert large >= small - 1e-12

    def test_matvec_validates_length(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        with pytest.raises(ValueError):
            b.matvec(np.ones(5))

    def test_stored_blocks_counted(self):
        b = to_bcsr(SparseMatrix.from_dense(FIGURE11), 2, 2)
        assert b.n_blocks == 4
        assert b.stored_values == 16
