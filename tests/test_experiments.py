"""Tests for the experiment infrastructure (scales, caching, drivers, CLI)."""

import numpy as np
import pytest

from repro.experiments.common import (
    SCALES,
    GeneralStudy,
    Scale,
    build_general_dataset,
    cache_dir,
    cached,
    current_scale,
    empty_general_dataset,
)


@pytest.fixture()
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestScales:
    def test_three_scales(self):
        assert set(SCALES) == {"small", "bench", "full"}

    def test_full_matches_paper_counts(self):
        full = SCALES["full"]
        assert full.configs_per_app == 360     # §4.3
        assert full.population == 50           # Figure 4's "50 best models"
        assert full.generations == 20          # Figure 5
        assert full.validation_pairs == 140    # §4.3
        assert full.spmv_train == 400          # §5.3
        assert full.spmv_val == 100

    def test_default_scale_is_bench(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "bench"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale().name == "small"

    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale("full").name == "full"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            current_scale("huge")


class TestCache:
    def test_build_called_once(self, tmp_cache):
        calls = []

        def build():
            calls.append(1)
            return {"value": 42}

        a = cached("test-key", build)
        b = cached("test-key", build)
        assert a == b == {"value": 42}
        assert len(calls) == 1

    def test_different_keys_different_artifacts(self, tmp_cache):
        assert cached("key-a", lambda: 1) == 1
        assert cached("key-b", lambda: 2) == 2

    def test_refresh_rebuilds(self, tmp_cache):
        cached("key-r", lambda: 1)
        assert cached("key-r", lambda: 2, refresh=True) == 2

    def test_cache_dir_env(self, tmp_cache):
        assert str(cache_dir()) == str(tmp_cache)


class TestGeneralStudy:
    @pytest.fixture(scope="class")
    def study(self):
        scale = Scale("test", 4, 3, 6, 1, 6, 10, 5, 4)
        return GeneralStudy(scale, seed=5)

    def test_applications(self, study):
        assert len(study.applications()) == 7

    def test_shards_cached(self, study):
        a = study.shards("astar")
        b = study.shards("astar")
        assert a is b
        assert len(a) == 3

    def test_profiles_align_with_shards(self, study):
        profiles = study.profiles("astar")
        assert len(profiles) == len(study.shards("astar"))
        assert profiles[0].application == "astar"

    def test_record_construction(self, study):
        from repro.uarch import sample_configs

        rng = np.random.default_rng(0)
        config = sample_configs(1, rng)[0]
        record = study.record("astar", 0, config)
        assert record.z > 0
        assert len(record.x) == 13
        assert len(record.y) == 13

    def test_sample_records_one_per_config(self, study):
        from repro.uarch import sample_configs

        rng = np.random.default_rng(0)
        configs = sample_configs(3, rng)
        records = study.sample_records("bzip2", configs, rng)
        assert len(records) == 3


class TestBuildDataset:
    def test_shapes_and_caching(self, tmp_cache):
        scale = Scale("test", 3, 2, 6, 1, 7, 10, 5, 4)
        train, val = build_general_dataset(scale, seed=3)
        assert len(train) == 7 * 3
        assert len(val) == 7 * 1  # validation_pairs // n_apps = 1 each
        # Second call hits the cache and returns identical data.
        train2, _ = build_general_dataset(scale, seed=3)
        assert np.array_equal(train.targets(), train2.targets())

    def test_empty_dataset_variables(self):
        ds = empty_general_dataset()
        assert len(ds.x_names) == 13
        assert len(ds.y_names) == 13


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "fig16" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig99"]) == 2

    def test_run_one(self, tmp_cache, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig03", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_failed_check_exits_nonzero(self, tmp_cache, capsys, monkeypatch):
        # Satellite of the retune PR: a demo whose acceptance check fails
        # (here: a drift detector that never trips) must not exit 0.
        from repro.experiments import stream_demo
        from repro.experiments.__main__ import main

        def _regressed(scale):
            scenario = {
                "steps": 2,
                "trips": 0,  # never tripped: the check must fail
                "refreshes": 2,
                "actions": ["refresh", "refresh"],
                "drift_scores": [1.0, 1.0],
                "batch_errors": [0.1, 0.1],
                "max_score": 1.0,
                "active_disagreement_gain": 1.0,
                "stats": {},
            }
            return {
                "scale": scale.name,
                "drifting": dict(scenario),
                "stationary": dict(scenario),
            }

        monkeypatch.setattr(stream_demo, "run", _regressed)
        assert main(["stream", "--scale", "small", "--report-dir", "-"]) == 1
        captured = capsys.readouterr()
        assert "FAILED check" in captured.err
        assert "never tripped" in captured.err

    def test_experiment_registry_complete(self):
        from repro.experiments.__main__ import EXPERIMENTS

        # Every paper artifact with data has a CLI entry (13 paper
        # artifacts + the ablation suite, the memory extension, the
        # serving demo, the streaming + retuning demos, and the
        # cross-backend transfer demo).
        assert len(EXPERIMENTS) == 19
        assert "transfer" in EXPERIMENTS


class TestFigureChecks:
    """Acceptance checks of the figure demos (the backend/transfer PR
    gave every headline demo a ``check()`` that must catch regressions)."""

    def _trend_result(self, **overrides):
        from repro.experiments.fig12_13_trends import TrendResult

        base = dict(
            by_brow={r: 25.0 for r in range(1, 9)},
            by_bcol={c: 25.0 for c in range(1, 9)},
            by_fill_bin={"[1.00,1.05)": 30.0, "[2.00,inf)": 16.0},
            by_line={16: 20.0, 32: 30.0, 64: 45.0, 128: 60.0},
            by_dsize={4: 24.0, 8: 24.5},
            by_dways={1: 23.0, 2: 24.2, 4: 24.4, 8: 24.3},
            by_drepl={"LRU": 24.3},
            n_samples=100,
        )
        base.update(overrides)
        return TrendResult(**base)

    def test_fig12_13_check_passes_on_paper_shapes(self):
        from repro.experiments import fig12_13_trends

        fig12_13_trends.check(self._trend_result())

    def test_fig12_13_check_catches_broken_line_trend(self):
        from repro.experiments import fig12_13_trends

        regressed = self._trend_result(
            by_line={16: 60.0, 32: 45.0, 64: 30.0, 128: 20.0}
        )
        with pytest.raises(AssertionError, match="line-size trend"):
            fig12_13_trends.check(regressed)

    def test_fig12_13_check_catches_missing_fill_penalty(self):
        from repro.experiments import fig12_13_trends

        regressed = self._trend_result(
            by_fill_bin={"[1.00,1.05)": 16.0, "[2.00,inf)": 30.0}
        )
        with pytest.raises(AssertionError, match="fill-ratio"):
            fig12_13_trends.check(regressed)

    def test_fig12_13_check_catches_associativity_cliff(self):
        from repro.experiments import fig12_13_trends

        regressed = self._trend_result(
            by_dways={1: 20.0, 2: 24.0, 4: 28.0, 8: 32.0}
        )
        with pytest.raises(AssertionError, match="associativity"):
            fig12_13_trends.check(regressed)

    def _fig14_result(self, perf_median=0.05, power_median=0.06, rho=0.95):
        from repro.core import BoxplotStats
        from repro.experiments.fig14_spmv import Fig14Result, MatrixAccuracy

        stats_p = BoxplotStats.from_errors(np.full(20, perf_median))
        stats_w = BoxplotStats.from_errors(np.full(20, power_median))
        acc = MatrixAccuracy(
            performance=stats_p,
            power=stats_w,
            performance_rho=rho,
            power_rho=rho,
        )
        return Fig14Result(
            per_matrix={"3dtube": acc, "bayer02": acc},
            median_of_medians_perf=perf_median,
            median_of_medians_power=power_median,
        )

    def test_fig14_check_passes_in_paper_band(self):
        from repro.experiments import fig14_spmv

        fig14_spmv.check(self._fig14_result())

    def test_fig14_check_catches_median_drift(self):
        from repro.experiments import fig14_spmv

        with pytest.raises(AssertionError, match="median-of-medians"):
            fig14_spmv.check(self._fig14_result(perf_median=0.15))

    def test_fig14_check_catches_correlation_collapse(self):
        from repro.experiments import fig14_spmv

        with pytest.raises(AssertionError, match="correlation collapsed"):
            fig14_spmv.check(self._fig14_result(rho=0.3))

    def test_fig14_failed_check_exits_nonzero(self, tmp_cache, capsys, monkeypatch):
        from repro.experiments import fig14_spmv
        from repro.experiments.__main__ import main

        regressed = self._fig14_result(perf_median=0.4, power_median=0.5)
        monkeypatch.setattr(fig14_spmv, "run", lambda scale: regressed)
        assert main(["fig14", "--scale", "small", "--report-dir", "-"]) == 1
        assert "FAILED check" in capsys.readouterr().err


class TestServeBootstrapCheck:
    """The serve CLI must refuse to come up on a failed bootstrap."""

    def _fake_service(self, error, backend="cpu"):
        from types import SimpleNamespace

        serving = SimpleNamespace(
            manager=SimpleNamespace(steady_state_error=error),
            slot=SimpleNamespace(version=1),
            stats_dict=lambda: {"backend": backend},
            close=lambda: None,
        )
        return SimpleNamespace(port=0), serving, None

    def test_unusable_bootstrap_model_exits_nonzero(self, capsys, monkeypatch):
        import repro.serve

        from repro.experiments.__main__ import main

        monkeypatch.setattr(
            repro.serve,
            "build_service",
            lambda *a, **k: self._fake_service(error=0.9),
        )
        assert main(["serve", "--port", "0"]) == 1
        err = capsys.readouterr().err
        assert "FAILED check" in err and "steady-state" in err

    def test_lost_backend_tag_exits_nonzero(self, capsys, monkeypatch):
        import repro.serve

        from repro.experiments.__main__ import main

        monkeypatch.setattr(
            repro.serve,
            "build_service",
            lambda *a, **k: self._fake_service(error=0.01, backend="mystery"),
        )
        assert main(["serve", "--port", "0", "--backend", "gpu"]) == 1
        err = capsys.readouterr().err
        assert "FAILED check" in err and "backend tag" in err

    def test_check_accepts_healthy_bootstrap(self):
        from repro.experiments.__main__ import _check_bootstrap

        _, serving, _ = self._fake_service(error=0.01, backend="gpu")
        _check_bootstrap(serving, "gpu")


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "datacenter_scheduling.py",
            "spmv_autotuning.py",
            "model_update.py",
        ],
    )
    def test_compiles(self, script):
        import pathlib
        import py_compile

        path = pathlib.Path(__file__).resolve().parents[1] / "examples" / script
        assert path.exists()
        py_compile.compile(str(path), doraise=True)


class TestDriverSmoke:
    """End-to-end smoke runs of representative experiment drivers at a
    miniature scale (heavier drivers are exercised by benchmarks/)."""

    @pytest.fixture()
    def tiny(self):
        return Scale("tiny", 6, 3, 6, 2, 7, 40, 12, 6)

    def test_fig12_13_shapes(self, tmp_cache, tiny):
        from repro.experiments import fig12_13_trends

        result = fig12_13_trends.run(tiny, seed=99)
        assert set(result.by_brow) == set(range(1, 9))
        assert set(result.by_bcol) == set(range(1, 9))
        assert all(np.isfinite(v) for v in result.by_line.values())
        report = fig12_13_trends.report(result)
        assert "Figure 12" in report and "Figure 13" in report

    def test_fig15_grids(self, tmp_cache, tiny):
        from repro.experiments import fig15_topology

        result = fig15_topology.run(tiny, seed=99)
        assert result.profiled.shape == (8, 8)
        assert result.predicted.shape == (8, 8)
        assert -1.0 <= result.correlation <= 1.0
        assert "profiled" in fig15_topology.report(result)

    def test_fig03_report(self, tmp_cache, tiny):
        from repro.experiments import fig03_variance

        result = fig03_variance.run(tiny, seed=99)
        assert len(result.sums) == 7 * tiny.shards_per_app
        assert "histogram" in fig03_variance.report(result)


class TestExampleFiveCompiles:
    def test_adaptive_reconfiguration_compiles(self):
        import pathlib
        import py_compile

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "examples"
            / "adaptive_reconfiguration.py"
        )
        assert path.exists()
        py_compile.compile(str(path), doraise=True)
