"""End-to-end: real sockets, framing, ops, backpressure, error statuses."""

import numpy as np
import pytest

from repro.serve import (
    BatchConfig,
    ServeClient,
    ServeError,
    ServerThread,
    wait_for_server,
)
from repro.serve.bootstrap import build_service, demo_dataset

N_VARS = 5


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    server, serving, registry = build_service(
        demo_dataset(seed=0),
        tmp_path_factory.mktemp("registry"),
        generations=1,
        population_size=6,
        batch_config=BatchConfig(max_batch=32, max_latency_s=0.001),
    )
    with ServerThread(server) as thread:
        yield thread, server, serving, registry
    serving.close()


@pytest.fixture()
def client(service):
    thread, *_ = service
    with ServeClient(port=thread.port) as c:
        yield c


class TestOps:
    def test_ping(self, client):
        assert client.ping()

    def test_info(self, client):
        info = client.info()
        assert info["model_version"] >= 1
        assert info["variables"] == ["x1", "x2", "x3", "y1", "y2"]
        assert info["response"] == "log"

    def test_predict_roundtrip_bit_identical(self, service, client):
        _, server, *_ = service
        version, model = server.slot.get()
        row = [1.0, 0.5, 0.2, 1.0, 1.5]
        reply = client.predict_row(row)
        assert reply["model_version"] == version
        assert reply["prediction"] == model.predict_one(row[:3], row[3:])

    def test_predict_xy_form(self, service, client):
        _, server, *_ = service
        _, model = server.slot.get()
        reply = client.predict([1.0, 0.5, 0.2], [1.0, 1.5])
        assert reply["prediction"] == model.predict_one(
            [1.0, 0.5, 0.2], [1.0, 1.5]
        )

    def test_predict_batch_matches_singles(self, client):
        rows = np.abs(np.random.default_rng(3).normal(1, 0.3, size=(10, N_VARS)))
        batch = client.predict_batch(rows)["predictions"]
        singles = [client.predict_row(r.tolist())["prediction"] for r in rows]
        assert batch == singles

    def test_stats_exposes_batching(self, client):
        client.predict_row([1.0] * N_VARS)
        stats = client.stats()
        assert stats["predictions"] >= 1
        assert "occupancy_histogram" in stats["batching"]
        assert stats["model_version"] >= 1
        assert "updates" in stats  # manager is attached


class TestErrors:
    def test_unknown_op_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.request({"op": "frobnicate"})
        assert exc.value.status == 404

    def test_wrong_arity_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.predict_row([1.0, 2.0])
        assert exc.value.status == 400

    def test_non_finite_rejected_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.predict_row([float("nan")] * N_VARS)
        assert exc.value.status == 400

    def test_missing_fields_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.request({"op": "predict"})
        assert exc.value.status == 400

    def test_bad_observe_without_profiles_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.request({"op": "observe", "application": "a", "profiles": []})
        assert exc.value.status == 400


class TestBackpressure:
    def test_queue_full_is_429(self, tmp_path):
        # A queue of depth 2 with an extremely slow tick: the third
        # concurrent request must be shed with 429.
        server, serving, _ = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
            batch_config=BatchConfig(
                max_batch=1024,
                max_latency_s=5.0,
                queue_depth=2,
                request_timeout_s=30.0,
            ),
        )
        import threading

        with ServerThread(server) as thread:
            fillers = [ServeClient(port=thread.port) for _ in range(2)]
            started = []

            def fire(c):
                started.append(1)
                try:
                    c.predict_row([1.0] * N_VARS)
                except (ServeError, ConnectionError, OSError):
                    pass  # shed or cut off at server shutdown — expected

            threads = [
                threading.Thread(target=fire, args=(c,), daemon=True)
                for c in fillers
            ]
            for t in threads:
                t.start()
            # Wait until both fillers are queued server-side.
            probe = wait_for_server("127.0.0.1", thread.port)
            deadline = 50
            while deadline and server.batcher.stats.requests == 0:
                import time

                time.sleep(0.1)
                deadline -= 1
                if len(server.batcher._queue) >= 2:
                    break
            with pytest.raises(ServeError) as exc:
                probe.predict_row([1.0] * N_VARS)
            assert exc.value.status == 429
            probe.close()
        # Server is down: the filler requests have errored out; reap the
        # threads before closing their sockets.
        for t in threads:
            t.join(10)
        for c in fillers:
            c.close()
        serving.close()

    def test_shutdown_op_stops_server(self, tmp_path):
        server, serving, _ = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            population_size=6,
        )
        thread = ServerThread(server).start()
        client = ServeClient(port=thread.port)
        assert client.shutdown()["ok"]
        client.close()
        thread._done.wait(10)
        assert thread._done.is_set()
        serving.close()
