"""Unit and property tests for variable transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TransformKind,
    choose_ladder_power,
    fit_transform,
    polynomial_basis,
    skewness,
    spline_knots,
    stabilize,
    truncated_power_basis,
)


class TestSkewness:
    def test_symmetric_is_zero(self):
        values = np.array([-2, -1, 0, 1, 2], dtype=float)
        assert skewness(values) == pytest.approx(0.0)

    def test_right_tail_positive(self):
        values = np.concatenate([np.ones(100), [50.0]])
        assert skewness(values) > 1.0

    def test_constant_is_zero(self):
        assert skewness(np.full(10, 3.0)) == 0.0


class TestStabilize:
    def test_identity_power_one(self):
        values = np.array([1.0, 4.0, 9.0])
        assert (stabilize(values, 1) == values).all()

    def test_square_root(self):
        assert stabilize(np.array([4.0]), 2)[0] == pytest.approx(2.0)

    def test_fifth_root_matches_paper(self):
        assert stabilize(np.array([32.0]), 5)[0] == pytest.approx(2.0)

    def test_negative_values_signed(self):
        assert stabilize(np.array([-8.0]), 3)[0] == pytest.approx(-2.0)

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            stabilize(np.array([1.0]), 0)

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_monotone(self, power):
        values = np.linspace(-10, 10, 50)
        out = stabilize(values, power)
        assert (np.diff(out) >= 0).all()


class TestLadder:
    def test_symmetric_keeps_identity(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=500)
        assert choose_ladder_power(values) == 1

    def test_lognormal_gets_root(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3.0, 1.5, size=500)
        assert choose_ladder_power(values) >= 3

    def test_reduces_skewness(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3.0, 1.5, size=500)
        power = choose_ladder_power(values)
        assert abs(skewness(stabilize(values, power))) < abs(skewness(values))


class TestBases:
    def test_polynomial_shapes(self):
        values = np.arange(5, dtype=float)
        assert polynomial_basis(values, 1).shape == (5, 1)
        assert polynomial_basis(values, 3).shape == (5, 3)

    def test_polynomial_columns(self):
        basis = polynomial_basis(np.array([2.0]), 3)
        assert basis.tolist() == [[2.0, 4.0, 8.0]]

    def test_polynomial_degree_validated(self):
        with pytest.raises(ValueError):
            polynomial_basis(np.array([1.0]), 4)

    def test_truncated_power_shape(self):
        knots = np.array([0.25, 0.5, 0.75])
        basis = truncated_power_basis(np.linspace(0, 1, 9), knots)
        assert basis.shape == (9, 6)  # x, x^2, x^3 + one per knot

    def test_truncated_power_zero_below_knot(self):
        knots = np.array([0.5])
        basis = truncated_power_basis(np.array([0.2, 0.9]), knots)
        assert basis[0, 3] == 0.0
        assert basis[1, 3] == pytest.approx(0.4**3)

    @given(st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_spline_continuity_at_knots(self, delta):
        """S(x) built from the truncated-power basis is C2: values approach
        the same limit from both sides of a knot."""
        knot = 0.5
        eps = 1e-6
        below = truncated_power_basis(np.array([knot - eps]), np.array([knot]))
        above = truncated_power_basis(np.array([knot + eps]), np.array([knot]))
        coef = np.array([1.0, -0.5, 0.3, 2.0 + delta])
        assert below @ coef == pytest.approx(above @ coef, abs=1e-4)

    def test_spline_knots_are_quantiles(self):
        values = np.linspace(0, 100, 1001)
        knots = spline_knots(values, 3)
        assert knots == pytest.approx([25, 50, 75], abs=0.5)

    def test_spline_knots_validated(self):
        with pytest.raises(ValueError):
            spline_knots(np.array([1.0]), 0)


class TestFitTransform:
    def test_excluded_empty(self):
        fitted = fit_transform(np.arange(10.0), TransformKind.EXCLUDED)
        assert fitted.n_columns == 0
        assert fitted.apply(np.arange(4.0)).shape == (4, 0)

    def test_linear_single_column(self):
        fitted = fit_transform(np.arange(10.0), TransformKind.LINEAR)
        assert fitted.n_columns == 1

    def test_spline_columns(self):
        rng = np.random.default_rng(0)
        fitted = fit_transform(rng.normal(size=200), TransformKind.SPLINE)
        assert fitted.n_columns == 3 + len(fitted.knots)
        assert len(fitted.knots) == 3

    def test_standardization(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 3.0, size=500)
        fitted = fit_transform(values, TransformKind.LINEAR)
        z = fitted.stabilized(values)
        assert z.mean() == pytest.approx(0.0, abs=1e-9)
        assert z.std() == pytest.approx(1.0, abs=1e-9)

    def test_replay_on_new_data(self):
        """Knots and powers estimated on training data are replayed
        verbatim — the transform of a point does not depend on what other
        points it is batched with."""
        rng = np.random.default_rng(0)
        train = rng.lognormal(2, 1, size=300)
        fitted = fit_transform(train, TransformKind.SPLINE)
        single = fitted.apply(np.array([5.0]))
        batch = fitted.apply(np.array([5.0, 100.0, 0.1]))
        assert single[0] == pytest.approx(batch[0])

    def test_long_tail_triggers_stabilization(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3, 1.5, size=400)
        fitted = fit_transform(values, TransformKind.LINEAR)
        assert fitted.power > 1

    def test_constant_column_safe(self):
        fitted = fit_transform(np.full(50, 7.0), TransformKind.QUADRATIC)
        out = fitted.apply(np.full(5, 7.0))
        assert np.isfinite(out).all()

    def test_column_suffixes_match_width(self):
        rng = np.random.default_rng(0)
        for kind in TransformKind:
            fitted = fit_transform(rng.normal(size=100), kind)
            assert len(fitted.column_suffixes()) == fitted.n_columns
