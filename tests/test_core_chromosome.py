"""Unit and property tests for the genetic encoding and its operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Chromosome, TransformKind
from repro.core.chromosome import (
    N_GENE_VALUES,
    crossover_create_interaction,
    crossover_interaction,
    crossover_variable,
    mutate_interaction,
    mutate_variable,
)

chromosomes = st.builds(
    lambda genes, pair_seeds: Chromosome(
        tuple(genes),
        frozenset(
            (min(a, b), max(a, b))
            for a, b in pair_seeds
            if a != b and a < len(genes) and b < len(genes)
        ),
    ),
    st.lists(st.integers(0, 4), min_size=4, max_size=10),
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=6),
)


class TestChromosome:
    def test_gene_range_validated(self):
        with pytest.raises(ValueError):
            Chromosome((0, 5), frozenset())

    def test_interaction_range_validated(self):
        with pytest.raises(ValueError):
            Chromosome((1, 1), frozenset({(0, 7)}))

    def test_self_interaction_rejected(self):
        with pytest.raises(ValueError):
            Chromosome((1, 1), frozenset({(1, 1)}))

    def test_interactions_normalized(self):
        c = Chromosome((1, 1, 1), frozenset({(2, 0)}))
        assert c.interactions == frozenset({(0, 2)})

    def test_to_spec_gene_values_match_paper(self):
        """Gene 0 excludes; 1/2/3 are linear/quadratic/cubic; 4 is the
        piecewise-cubic spline with three inflections (§3.4)."""
        c = Chromosome((0, 1, 2, 3, 4), frozenset())
        spec = c.to_spec(("a", "b", "c", "d", "e"))
        assert spec.transforms["a"] == TransformKind.EXCLUDED
        assert spec.transforms["b"] == TransformKind.LINEAR
        assert spec.transforms["c"] == TransformKind.QUADRATIC
        assert spec.transforms["d"] == TransformKind.CUBIC
        assert spec.transforms["e"] == TransformKind.SPLINE

    def test_to_spec_interactions_named(self):
        c = Chromosome((1, 1, 1), frozenset({(0, 2)}))
        spec = c.to_spec(("a", "b", "c"))
        assert spec.interactions == frozenset({("a", "c")})

    def test_to_spec_length_checked(self):
        with pytest.raises(ValueError):
            Chromosome((1, 1), frozenset()).to_spec(("a",))

    def test_random_reproducible(self):
        a = Chromosome.random(10, np.random.default_rng(3))
        b = Chromosome.random(10, np.random.default_rng(3))
        assert a == b

    def test_random_needs_two_variables(self):
        with pytest.raises(ValueError):
            Chromosome.random(1, np.random.default_rng(0))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_always_valid(self, seed):
        c = Chromosome.random(8, np.random.default_rng(seed))
        assert all(0 <= g < N_GENE_VALUES for g in c.genes)
        assert all(i < j for i, j in c.interactions)


class TestOperators:
    @given(chromosomes, chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_c1_preserves_length_and_validity(self, a, b, seed):
        if a.n_variables != b.n_variables:
            return
        rng = np.random.default_rng(seed)
        a2, b2 = crossover_variable(a, b, rng)
        assert a2.n_variables == a.n_variables
        # Exactly one position may differ in each child.
        assert sum(x != y for x, y in zip(a.genes, a2.genes)) <= 1

    @given(chromosomes, chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_c1_swaps_symmetrically(self, a, b, seed):
        if a.n_variables != b.n_variables:
            return
        rng = np.random.default_rng(seed)
        a2, b2 = crossover_variable(a, b, rng)
        changed = [i for i, (x, y) in enumerate(zip(a.genes, a2.genes)) if x != y]
        for i in changed:
            assert a2.genes[i] == b.genes[i]
            assert b2.genes[i] == a.genes[i]

    @given(chromosomes, chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_c2_only_adds_existing_interactions(self, a, b, seed):
        if a.n_variables != b.n_variables:
            return
        rng = np.random.default_rng(seed)
        a2, b2 = crossover_interaction(a, b, rng)
        assert a2.interactions <= a.interactions | b.interactions
        assert b2.interactions <= a.interactions | b.interactions
        assert a2.genes == a.genes  # C2 never touches variable genes

    @given(chromosomes, chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_c3_creates_shared_interaction(self, a, b, seed):
        if a.n_variables != b.n_variables:
            return
        rng = np.random.default_rng(seed)
        a2, b2 = crossover_create_interaction(a, b, rng)
        created_a = a2.interactions - a.interactions
        created_b = b2.interactions - b.interactions
        # The same new pair lands in both children (if it was new to them).
        assert created_a <= b2.interactions
        assert created_b <= a2.interactions
        assert len(a2.interactions) >= len(a.interactions)

    @given(chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_m1_changes_only_interactions(self, c, seed):
        rng = np.random.default_rng(seed)
        mutated = mutate_interaction(c, rng)
        assert mutated.genes == c.genes
        assert mutated.interactions != c.interactions or len(c.interactions) > 0

    @given(chromosomes, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_m2_changes_exactly_one_gene(self, c, seed):
        rng = np.random.default_rng(seed)
        mutated = mutate_variable(c, rng)
        diffs = sum(x != y for x, y in zip(c.genes, mutated.genes))
        assert diffs == 1
        assert mutated.interactions == c.interactions
