"""Unit and property tests for the microarchitecture-independent profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass, Trace, empty_trace
from repro.profiling import (
    N_CHARACTERISTICS,
    SOFTWARE_VARIABLE_NAMES,
    mean_reuse_distance,
    profile_application,
    profile_shard,
    reuse_distances,
    reuse_distance_sums,
    stack_distances,
)
from repro.profiling.shards import ShardProfile


def naive_reuse_distances(addresses, positions, block_bytes):
    """Reference implementation: dict of last positions."""
    last = {}
    out = []
    for addr, pos in zip(addresses, positions):
        block = addr // block_bytes
        if block in last:
            out.append(pos - last[block])
        last[block] = pos
    return sorted(out)


def naive_stack_distances(addresses, block_bytes=64):
    blocks = [a // block_bytes for a in addresses]
    out = []
    last = {}
    for i, b in enumerate(blocks):
        if b in last:
            out.append(len(set(blocks[last[b] + 1 : i])))
        else:
            out.append(None)
        last[b] = i
    return out


class TestReuseDistances:
    def test_empty(self):
        assert len(reuse_distances(np.array([]), np.array([]))) == 0

    def test_single_access_no_reuse(self):
        assert len(reuse_distances(np.array([0]), np.array([0]))) == 0

    def test_simple_pair(self):
        # Same 64B block touched at instructions 0 and 10.
        d = reuse_distances(np.array([8, 16]), np.array([0, 10]))
        assert d.tolist() == [10]

    def test_block_granularity(self):
        # Different 64B blocks: no reuse at 64B, reuse at 256B.
        addrs = np.array([0, 128])
        pos = np.array([0, 4])
        assert len(reuse_distances(addrs, pos, 64)) == 0
        assert reuse_distances(addrs, pos, 256).tolist() == [4]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            reuse_distances(np.array([0]), np.array([0]), 48)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reuse_distances(np.array([0, 1]), np.array([0]))

    def test_mean_default_when_no_reuse(self):
        assert mean_reuse_distance(np.array([0, 64]), np.array([0, 1]), 64, 99.0) == 99.0

    def test_sums(self):
        addrs = np.array([8, 16, 8])
        pos = np.array([0, 5, 9])
        # distances: 5 (block 0 reused at 5), 4 (reused again at 9)
        assert reuse_distance_sums(addrs, pos, 64) == 9.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 2000), st.integers(0, 50)),
            min_size=0,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, items):
        addrs = np.array([a for a, _ in items], dtype=np.int64)
        gaps = np.array([g for _, g in items], dtype=np.int64)
        positions = np.cumsum(gaps)
        got = sorted(reuse_distances(addrs, positions, 64).tolist())
        expected = naive_reuse_distances(addrs.tolist(), positions.tolist(), 64)
        assert got == expected


class TestStackDistances:
    def test_empty(self):
        d, cold = stack_distances(np.array([]))
        assert len(d) == 0 and cold == 0

    def test_all_cold(self):
        d, cold = stack_distances(np.array([0, 64, 128]))
        assert cold == 3
        assert (d >= 2**61).all()

    def test_immediate_reuse_distance_zero(self):
        d, cold = stack_distances(np.array([0, 8]))
        assert cold == 1
        assert d[1] == 0

    def test_classic_sequence(self):
        # a b c a : stack distance of the second a is 2 (b, c in between).
        d, _ = stack_distances(np.array([0, 64, 128, 0]))
        assert d[3] == 2

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, blocks):
        addrs = np.array(blocks, dtype=np.int64) * 64
        got, cold = stack_distances(addrs)
        expected = naive_stack_distances(addrs.tolist())
        assert cold == sum(1 for e in expected if e is None)
        for g, e in zip(got, expected):
            if e is None:
                assert g >= 2**61
            else:
                assert g == e

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_lru_hit_counting_consistent(self, blocks):
        """Hits at capacity C = accesses with stack distance < C; the total
        over all capacities is monotone in C (bigger LRU cache never misses
        more — the inclusion property)."""
        addrs = np.array(blocks, dtype=np.int64) * 64
        d, _ = stack_distances(addrs)
        misses = [int((d >= c).sum()) for c in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(misses, misses[1:]))


class TestProfileShard:
    def _shard(self, n=600):
        data = empty_trace(n)
        rng = np.random.default_rng(0)
        data["op"] = rng.integers(0, 6, size=n)
        control = data["op"] == int(OpClass.CONTROL)
        data["taken"][control] = True
        mem = data["op"] == int(OpClass.MEMORY)
        data["addr"][mem] = rng.integers(0, 50, size=int(mem.sum())) * 64
        data["iaddr"] = np.arange(n) * 4
        data["dep"] = rng.integers(0, 5, size=n)
        return Trace(data, "s")

    def test_vector_length(self):
        x = profile_shard(self._shard())
        assert len(x) == N_CHARACTERISTICS == 13
        assert len(SOFTWARE_VARIABLE_NAMES) == 13

    def test_mix_counts_sum(self):
        shard = self._shard()
        x = profile_shard(shard)
        # x1 + x3..x7 cover all six classes.
        assert x[0] + x[2] + x[3] + x[4] + x[5] + x[6] == len(shard)

    def test_taken_branches_bounded_by_control(self):
        x = profile_shard(self._shard())
        assert x[1] <= x[0]

    def test_basic_block_size(self):
        shard = self._shard()
        x = profile_shard(shard)
        assert x[12] == pytest.approx(len(shard) / max(x[0], 1))

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError):
            profile_shard(Trace(empty_trace(0)))

    def test_all_finite(self):
        assert np.isfinite(profile_shard(self._shard())).all()

    def test_producer_consumer_zero_when_class_absent(self):
        data = empty_trace(100)
        data["op"] = int(OpClass.INT_ALU)  # no FP at all
        data["dep"] = 1
        x = profile_shard(Trace(data))
        assert x[9] == 0.0 and x[10] == 0.0 and x[11] == 0.0

    def test_producer_consumer_measures_distance(self):
        data = empty_trace(100)
        data["op"] = int(OpClass.INT_ALU)
        data["op"][::10] = int(OpClass.FP_ALU)
        data["dep"] = 0
        # Every instruction right after an FP_ALU depends on it at distance 1.
        data["dep"][1::10] = 1
        x = profile_shard(Trace(data))
        assert x[9] == pytest.approx(1.0)

    def test_microarchitecture_independence(self, astar_trace):
        """The same shard yields the same profile regardless of any
        hardware parameter — there is simply no hardware input."""
        shard = astar_trace.shards(2_000)[0]
        assert (profile_shard(shard) == profile_shard(shard)).all()


class TestProfileApplication:
    def test_one_profile_per_shard(self, astar_trace):
        profiles = profile_application(astar_trace, 2_000)
        assert len(profiles) == 10

    def test_profile_keys(self, astar_trace):
        profiles = profile_application(astar_trace, 2_000, application="astar")
        assert profiles[3].key == "astar/shard003"

    def test_shard_profiles_differ(self, astar_trace):
        """Sharding preserves intra-application diversity (§2.1): not all
        shards look alike."""
        profiles = profile_application(astar_trace, 2_000)
        xs = np.array([p.x for p in profiles])
        assert (xs.std(axis=0) > 0).any()

    def test_profile_record_coerces_array(self):
        p = ShardProfile("a", 0, [1, 2, 3])
        assert p.x.dtype == float


class TestExtendedCharacteristics:
    def _shard(self, addrs, n=200):
        from repro.isa import OpClass, Trace, empty_trace

        data = empty_trace(n)
        data["op"][: len(addrs)] = int(OpClass.MEMORY)
        data["addr"][: len(addrs)] = addrs
        data["iaddr"] = (np.arange(n) * 4) % 256
        return Trace(data, "x")

    def test_vector_has_seventeen_entries(self, astar_trace):
        from repro.profiling import (
            EXTENDED_VARIABLE_NAMES,
            profile_shard,
            profile_shard_extended,
        )

        shard = astar_trace.shards(2_000)[0]
        x = profile_shard_extended(shard)
        assert len(x) == len(EXTENDED_VARIABLE_NAMES) == 17
        # The first thirteen entries are exactly the Table 1 vector.
        assert (x[:13] == profile_shard(shard)).all()

    def test_footprint_counts_distinct_blocks(self):
        from repro.profiling import profile_shard_extended

        shard = self._shard(np.array([0, 8, 64, 128, 128]))
        x = profile_shard_extended(shard)
        assert x[13] == 3.0  # blocks 0, 1, 2

    def test_streaming_fraction(self):
        from repro.profiling import profile_shard_extended

        # Strictly unit-stride accesses.
        shard = self._shard(np.arange(0, 400, 8, dtype=np.int64))
        x = profile_shard_extended(shard)
        assert x[15] == pytest.approx(1.0)

    def test_code_footprint(self):
        from repro.profiling import profile_shard_extended

        shard = self._shard(np.array([0]))
        # iaddr spans 256 bytes = 4 blocks of 64B.
        assert profile_shard_extended(shard)[16] == 4.0

    def test_burstiness_zero_without_far_accesses(self):
        from repro.profiling import profile_shard_extended

        shard = self._shard(np.array([0, 8, 16]))
        assert profile_shard_extended(shard)[14] == 0.0

    def test_no_memory_ops(self):
        from repro.profiling import profile_shard_extended

        shard = self._shard(np.array([], dtype=np.int64))
        x = profile_shard_extended(shard)
        assert x[13] == 0.0 and x[14] == 0.0 and x[15] == 0.0

    def test_microarchitecture_independent(self, astar_trace):
        from repro.profiling import profile_shard_extended

        shard = astar_trace.shards(2_000)[1]
        a = profile_shard_extended(shard)
        b = profile_shard_extended(shard)
        assert (a == b).all()
