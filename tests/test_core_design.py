"""Unit tests for model specs, design matrices, and collinearity pruning."""

import numpy as np
import pytest

from repro.core import (
    DesignMatrixBuilder,
    ModelSpec,
    TransformKind,
    normalize_interaction,
    prune_correlated,
    prune_design,
    prune_rank_deficient,
    variance_inflation_factors,
)
from tests.conftest import make_synthetic_dataset


def spec_for(ds, **kinds):
    transforms = {name: TransformKind.EXCLUDED for name in ds.variable_names}
    transforms.update({k: TransformKind[v.upper()] for k, v in kinds.items()})
    return ModelSpec(transforms=transforms)


class TestModelSpec:
    def test_normalize_interaction_sorts(self):
        assert normalize_interaction("y1", "x1") == ("x1", "y1")

    def test_self_interaction_rejected(self):
        with pytest.raises(ValueError):
            normalize_interaction("x1", "x1")

    def test_interaction_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(
                transforms={"x1": TransformKind.LINEAR},
                interactions=frozenset({("x1", "zz")}),
            )

    def test_included_variables(self):
        spec = ModelSpec(
            transforms={
                "a": TransformKind.LINEAR,
                "b": TransformKind.EXCLUDED,
                "c": TransformKind.SPLINE,
            }
        )
        assert set(spec.included_variables) == {"a", "c"}

    def test_complexity_counts_terms(self):
        spec = ModelSpec(
            transforms={"a": TransformKind.CUBIC, "b": TransformKind.LINEAR},
            interactions=frozenset({("a", "b")}),
        )
        assert spec.complexity() == 5

    def test_describe_mentions_terms(self):
        spec = ModelSpec(
            transforms={"a": TransformKind.LINEAR, "b": TransformKind.EXCLUDED},
            interactions=frozenset({("a", "b")}),
        )
        text = spec.describe()
        assert "a: linear" in text and "a * b" in text


class TestDesignMatrixBuilder:
    def test_columns_for_simple_spec(self, synthetic_dataset):
        spec = spec_for(synthetic_dataset, x1="linear", y1="quadratic")
        builder = DesignMatrixBuilder(spec)
        design = builder.fit_transform(synthetic_dataset)
        assert design.shape == (len(synthetic_dataset), 3)
        assert set(builder.column_names) == {"x1", "y1", "y1^2"}

    def test_interaction_column(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                name: TransformKind.EXCLUDED
                for name in synthetic_dataset.variable_names
            },
            interactions=frozenset({("x1", "y1")}),
        )
        builder = DesignMatrixBuilder(spec)
        design = builder.fit_transform(synthetic_dataset)
        assert design.shape[1] == 1
        assert builder.column_names == ("x1*y1",)

    def test_interaction_is_product_of_stabilized_views(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                name: TransformKind.EXCLUDED
                for name in synthetic_dataset.variable_names
            },
            interactions=frozenset({("x1", "y1")}),
        )
        builder = DesignMatrixBuilder(spec)
        design = builder.fit_transform(synthetic_dataset)
        # Product of two standardized columns: mean approx 0 for independents.
        assert abs(design[:, 0].mean()) < 0.5

    def test_transform_requires_fit(self, synthetic_dataset):
        builder = DesignMatrixBuilder(spec_for(synthetic_dataset, x1="linear"))
        with pytest.raises(RuntimeError):
            builder.transform(synthetic_dataset)

    def test_transform_checks_variables(self, synthetic_dataset):
        builder = DesignMatrixBuilder(spec_for(synthetic_dataset, x1="linear"))
        builder.fit(synthetic_dataset)
        other = make_synthetic_dataset(apps=("zeta",))
        # Same variable names: fine.
        assert builder.transform(other).shape[0] == len(other)

    def test_unknown_spec_variable_rejected(self, synthetic_dataset):
        spec = ModelSpec(transforms={"nope": TransformKind.LINEAR})
        with pytest.raises(ValueError):
            DesignMatrixBuilder(spec).fit(synthetic_dataset)

    def test_empty_dataset_rejected(self, synthetic_dataset):
        from repro.core import ProfileDataset

        spec = spec_for(synthetic_dataset, x1="linear")
        with pytest.raises(ValueError):
            DesignMatrixBuilder(spec).fit(
                ProfileDataset(synthetic_dataset.x_names, synthetic_dataset.y_names)
            )

    def test_train_statistics_replayed(self, synthetic_dataset):
        spec = spec_for(synthetic_dataset, x1="spline")
        builder = DesignMatrixBuilder(spec)
        builder.fit(synthetic_dataset)
        single = synthetic_dataset.subset([0])
        row_single = builder.transform(single)
        row_batch = builder.transform(synthetic_dataset)[0:1]
        assert np.allclose(row_single, row_batch)


class TestCollinearity:
    def test_prune_correlated_drops_duplicate(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        matrix = np.column_stack([a, a * 2.0, rng.normal(size=100)])
        kept = prune_correlated(matrix)
        assert kept == [0, 2]

    def test_prune_correlated_keeps_independent(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(100, 4))
        assert prune_correlated(matrix) == [0, 1, 2, 3]

    def test_prune_correlated_drops_constant(self):
        matrix = np.column_stack([np.ones(50), np.arange(50.0)])
        assert prune_correlated(matrix) == [1]

    def test_prune_rank_deficient_catches_multiway(self):
        """c = a + b is invisible to pairwise screening but caught by the
        rank sweep — the paper's 'subtle collinearity'."""
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        matrix = np.column_stack([a, b, a + b])
        assert prune_correlated(matrix) == [0, 1, 2]  # pairwise misses it
        assert prune_rank_deficient(matrix) == [0, 1]  # rank sweep catches it

    def test_prune_design_pipeline(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        matrix = np.column_stack([a, a.copy(), b, a + b])
        pruned, names, kept = prune_design(matrix, ["a", "a2", "b", "ab"])
        assert names == ["a", "b"]
        assert pruned.shape[1] == 2

    def test_prune_design_validates_names(self):
        with pytest.raises(ValueError):
            prune_design(np.zeros((5, 2)), ["only-one"])

    def test_vif_flags_collinear(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=200)
        matrix = np.column_stack(
            [a, a + rng.normal(0, 0.01, 200), rng.normal(size=200)]
        )
        vifs = variance_inflation_factors(matrix)
        assert vifs[0] > 10 and vifs[1] > 10
        assert vifs[2] < 2

    def test_vif_constant_is_infinite(self):
        matrix = np.column_stack([np.ones(50), np.arange(50.0)])
        assert variance_inflation_factors(matrix)[0] == np.inf

    def test_locality_quotient_example(self):
        """The paper's own example: spatial locality is the quotient of two
        temporal measures; after a log-style transform the three variables
        are linearly dependent and must be pruned."""
        rng = np.random.default_rng(0)
        temporal_64 = rng.lognormal(3, 1, 300)
        temporal_256 = temporal_64 * rng.lognormal(0.5, 0.1, 300)
        spatial = temporal_256 / temporal_64
        matrix = np.log(np.column_stack([temporal_64, temporal_256, spatial]))
        kept = prune_rank_deficient(matrix)
        assert len(kept) == 2
