"""Live-update swap safety.

Requests issued during a model update must never observe a half-published
model: every response is produced by exactly the (version, model) pair it
reports — old or new, nothing in between — and published versions increase
monotonically with zero failed requests across the swap.
"""

import asyncio

import numpy as np

from repro.core import InferredModel, ModelSpec, TransformKind
from repro.serve import (
    BatchConfig,
    MicroBatcher,
    ModelKey,
    ModelSlot,
)
from repro.serve.bootstrap import build_service, demo_dataset, outlier_profiles

N_VARS = 5


def _fit_variant(seed: int, kind: TransformKind) -> InferredModel:
    ds = demo_dataset(n_apps=3, n_per_app=25, seed=seed)
    spec = ModelSpec(
        transforms={
            "x1": kind,
            "x2": TransformKind.LINEAR,
            "x3": TransformKind.LINEAR,
            "y1": TransformKind.LINEAR,
            "y2": TransformKind.LINEAR,
        },
        interactions=frozenset({("x1", "y1")}),
    )
    return InferredModel.fit(spec, ds)


class TestSlotSwapDuringTraffic:
    def test_every_response_consistent_with_its_version(self):
        """Hammer the batcher while the slot swaps v1→v2→v3 mid-stream."""
        models = {
            1: _fit_variant(1, TransformKind.LINEAR),
            2: _fit_variant(2, TransformKind.QUADRATIC),
            3: _fit_variant(3, TransformKind.SPLINE),
        }
        rng = np.random.default_rng(5)
        rows = rng.normal(loc=0.5, scale=1.0, size=(400, N_VARS))
        # Expected per (version, row): the sequential single-row answer.
        expected = {
            v: [m.predict_one(r[:3], r[3:]) for r in rows]
            for v, m in models.items()
        }

        async def scenario():
            slot = ModelSlot(models[1], version=1)
            batcher = MicroBatcher(
                slot, BatchConfig(max_batch=16, max_latency_s=0.0005)
            )
            batcher.start()
            completions = []

            async def caller(i):
                prediction, version = await batcher.submit(rows[i])
                completions.append(
                    (asyncio.get_running_loop().time(), i, prediction, version)
                )

            async def swapper():
                # Swap on completion counts, not wall time, so the updates
                # reliably land in the middle of the request stream.
                while len(completions) < 100:
                    await asyncio.sleep(0.0005)
                slot.swap(2, models[2])
                while len(completions) < 250:
                    await asyncio.sleep(0.0005)
                slot.swap(3, models[3])

            tasks = [asyncio.ensure_future(swapper())]
            for i in range(len(rows)):
                tasks.append(asyncio.ensure_future(caller(i)))
                if i % 25 == 0:
                    await asyncio.sleep(0.001)
            await asyncio.gather(*tasks)
            await batcher.close()
            return completions

        completions = asyncio.run(scenario())
        assert len(completions) == len(rows)  # zero dropped requests

        versions_seen = set()
        for _, i, prediction, version in completions:
            versions_seen.add(version)
            assert prediction == expected[version][i], (
                f"row {i} served by v{version} does not match that "
                f"version's sequential prediction — torn snapshot?"
            )
        assert versions_seen <= {1, 2, 3}
        # The swap actually happened under traffic.
        assert 3 in versions_seen and len(versions_seen) >= 2

        # Monotonic: in completion-time order, versions never go backwards.
        ordered = [v for t, _, _, v in sorted(completions)]
        assert all(a <= b for a, b in zip(ordered, ordered[1:]))


class TestServingManagerUpdate:
    def test_observe_triggers_background_update_and_publish(self, tmp_path):
        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
            min_update_profiles=8,
        )
        profiles = [
            {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
            for p in outlier_profiles("newapp", n=10)
        ]
        key = ModelKey("demo", "suite")

        async def scenario():
            v_before = serving.slot.version
            reply = await serving.handle_observe(
                {"application": "newapp", "profiles": profiles}
            )
            assert reply["ok"] and not reply["accurate"]
            assert reply["update_scheduled"]
            await serving.wait_for_update()
            return v_before

        v_before = asyncio.run(scenario())
        serving.close()

        assert serving.slot.version == v_before + 1
        assert registry.versions(key) == [v_before, v_before + 1]
        assert serving.stats.updates_completed == 1
        assert serving.stats.updates_failed == 0
        # Registry's latest is exactly the live model.
        published, version = registry.load(key)
        assert version == serving.slot.version
        probe = np.full((1, N_VARS), 0.8)
        assert (
            published.predict_rows(probe) == serving.slot.get()[1].predict_rows(probe)
        ).all()
        meta = registry.entry_metadata(key, version)
        assert meta["trigger"] == "online-update"

    def test_accurate_application_absorbed_without_update(self, tmp_path):
        server, serving, registry = build_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
        )
        # Profiles drawn from an application the model already covers.
        ds = demo_dataset(n_apps=1, n_per_app=5, seed=0)
        profiles = [
            {"x": r.x.tolist(), "y": r.y.tolist(), "z": r.z} for r in ds.records
        ]

        async def scenario():
            return await serving.handle_observe(
                {"application": "app0", "profiles": profiles}
            )

        reply = asyncio.run(scenario())
        serving.close()
        assert reply["accurate"] and not reply["update_scheduled"]
        assert serving.slot.version == 1
        assert registry.versions(ModelKey("demo", "suite")) == [1]
