"""Integration tests: the full profile -> train -> predict -> update flow.

These exercise the same pipeline the paper's evaluation uses, end to end,
at miniature scale: synthetic traces are profiled into Table 1 vectors,
simulated on Table 2 architectures, a model is inferred, and the system is
perturbed by new software.
"""

import numpy as np
import pytest

from repro.core import (
    GeneticSearch,
    InferredModel,
    ModelManager,
    ProfileDataset,
    ProfileRecord,
    manual_general_spec,
    median_error,
    pearson_correlation,
)
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import HARDWARE_VARIABLE_NAMES, Simulator, sample_configs
from repro.workloads import (
    application_spec,
    generate_trace,
    optimization_variant,
)

SHARD = 2_000


@pytest.fixture(scope="module")
def pipeline():
    """Shared mini-corpus: 4 applications x 25 configs."""
    rng = np.random.default_rng(77)
    sim = Simulator()
    apps = ("astar", "bzip2", "hmmer", "omnetpp")
    train = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    val = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    shards_by_app = {}
    for app in apps:
        trace = generate_trace(application_spec(app), 5 * SHARD, seed=21, shard_length=SHARD)
        shards = trace.shards(SHARD)
        profiles = profile_application(trace, SHARD, application=app)
        shards_by_app[app] = (shards, profiles)
        for config in sample_configs(25, rng):
            i = int(rng.integers(0, len(shards)))
            record = ProfileRecord(
                app, profiles[i].x, config.as_vector(), sim.cpi(shards[i], config)
            )
            (train if rng.random() < 0.8 else val).add(record)
    return {"train": train, "val": val, "sim": sim, "shards": shards_by_app, "rng": rng}


class TestEndToEnd:
    def test_manual_model_predicts_validation(self, pipeline):
        model = InferredModel.fit(manual_general_spec(), pipeline["train"])
        score = model.score(pipeline["val"])
        assert score["median_error"] < 0.35
        assert score["correlation"] > 0.55

    def test_genetic_search_improves_on_random_start(self, pipeline):
        search = GeneticSearch(population_size=8, seed=5)
        result = search.run(pipeline["train"], generations=3)
        model = result.best_model(pipeline["train"])
        score = model.score(pipeline["val"])
        assert score["median_error"] < 0.35
        assert np.isfinite(score["correlation"])

    def test_model_ranks_architectures(self, pipeline):
        """Correlation in the optimization sense (§4.3): the model must
        rank configurations usefully for a fixed application shard."""
        rng = np.random.default_rng(3)
        sim = pipeline["sim"]
        shards, profiles = pipeline["shards"]["bzip2"]
        configs = sample_configs(15, rng)
        model = InferredModel.fit(manual_general_spec(), pipeline["train"])
        truth, predicted = [], []
        for config in configs:
            truth.append(sim.cpi(shards[0], config))
            predicted.append(model.predict_one(profiles[0].x, config.as_vector()))
        assert pearson_correlation(np.array(truth), np.array(predicted)) > 0.5

    def test_update_flow_absorbs_variant(self, pipeline):
        """§3.2's inductive step, end to end: a compiler variant of a known
        application arrives, the manager absorbs/updates, and predictions
        for the variant are usable."""
        rng = np.random.default_rng(9)
        sim = pipeline["sim"]
        manager = ModelManager(
            pipeline["train"],
            search=GeneticSearch(population_size=8, seed=2),
            generations=2,
            update_generations=1,
            min_update_profiles=5,
        )
        manager.train()

        variant = optimization_variant(application_spec("bzip2"), "-O1")
        trace = generate_trace(variant, 3 * SHARD, seed=31, shard_length=SHARD)
        shards = trace.shards(SHARD)
        profiles = profile_application(trace, SHARD, application=variant.name)
        records = []
        for config in sample_configs(8, rng):
            i = int(rng.integers(0, len(shards)))
            records.append(
                ProfileRecord(
                    variant.name,
                    profiles[i].x,
                    config.as_vector(),
                    sim.cpi(shards[i], config),
                )
            )
        outcome = manager.observe(records)
        assert outcome.application == "bzip2-O1"
        assert variant.name in manager.dataset.applications

        # Post-update predictions for held-out variant pairs are sane.
        holdout = []
        for config in sample_configs(6, rng):
            i = int(rng.integers(0, len(shards)))
            holdout.append(
                ProfileRecord(
                    variant.name,
                    profiles[i].x,
                    config.as_vector(),
                    sim.cpi(shards[i], config),
                )
            )
        probe = ProfileDataset(
            manager.dataset.x_names, manager.dataset.y_names, holdout
        )
        error = median_error(manager.model.predict(probe), probe.targets())
        assert error < 0.5

    def test_new_application_extrapolation_with_update(self, pipeline):
        """The §3.3 protocol in miniature: train without hmmer, absorb a
        handful of weighted hmmer profiles, predict fresh hmmer pairs.

        (Update-free extrapolation at this miniature training scale — 60
        records — is unreliable by design; the real-scale no-update claim
        is asserted by benchmarks/test_fig10_shards.py.)
        """
        rng = np.random.default_rng(13)
        sim = pipeline["sim"]
        train = pipeline["train"].without_application("hmmer")
        shards, profiles = pipeline["shards"]["hmmer"]

        def hmmer_records(n):
            records = []
            for config in sample_configs(n, rng):
                i = int(rng.integers(0, len(shards)))
                records.append(
                    ProfileRecord(
                        "hmmer", profiles[i].x, config.as_vector(),
                        sim.cpi(shards[i], config),
                    )
                )
            return records

        update = hmmer_records(8)
        combined = ProfileDataset(
            train.x_names, train.y_names, list(train.records) + update
        )
        weights = np.concatenate([np.ones(len(train)), np.full(len(update), 3.0)])
        model = InferredModel.fit(manual_general_spec(), combined, weights=weights)

        probe = ProfileDataset(train.x_names, train.y_names, hmmer_records(10))
        predictions = model.predict(probe)
        assert np.isfinite(predictions).all()
        assert median_error(predictions, probe.targets()) < 0.5


class TestSpMVIntegration:
    def test_model_guided_beats_untuned(self):
        """The whole §5 loop on one matrix: sample, fit, tune, verify."""
        from repro.spmv import (
            SpMVSpace,
            TuningSearch,
            fit_spmv_model,
            table4_matrix,
            tuning_cache_candidates,
        )

        rng = np.random.default_rng(17)
        space = SpMVSpace(table4_matrix("crystk02", seed=0))
        model = fit_spmv_model(space.sample_dataset(100, rng))
        search = TuningSearch(space, model, verify_top=3)
        caches = tuning_cache_candidates(10, rng)
        coord = search.coordinated_tuning(caches)
        assert coord.speedup > 1.5
