"""Tests for :mod:`repro.stream.retune` — online coordinated re-tuning.

The load-bearing contracts: an adopted tuning is *always* a
truly-measured verified candidate whose gain amortizes the switch-over
cost; a failed re-tune degrades to the last-good tuning; the demo
scenario separates — the drifting stream's (r, c, cache) migrates across
a re-specification while the stationary control holds its exhaustively
chosen initial tuning; and the decision history reaches serving ``stats``
and the Prometheus dump.
"""

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.experiments.common import SCALES
from repro.spmv import SpMVSpace, default_cache, fem_matrix
from repro.stream import (
    DriftConfig,
    DriftingSpMVSource,
    OnlineRetuner,
    SpMVStreamSource,
    StreamingRespecifier,
    TuningState,
)

FAST_DRIFT = DriftConfig(
    window=16, min_fill=4, trip_ratio=1.5, clear_ratio=1.2, patience=2
)

#: Small pool so every test's exhaustive bootstrap stays cheap.
TEST_BLOCKS = (1, 2, 3)


def _matrix(name="retuned"):
    return fem_matrix(16, 3, 3, 6, 13, name)


def _source(drifting=False, seed=5):
    cls = DriftingSpMVSource if drifting else SpMVStreamSource
    kwargs = dict(seed=seed, block_sizes=TEST_BLOCKS, n_caches=4)
    if drifting:
        kwargs["drop_fraction"] = 0.4
    return cls(_matrix(), **kwargs)


def _retuner(source, **kwargs):
    kwargs.setdefault("block_sizes", source.block_sizes)
    return OnlineRetuner(lambda: source.space, source.caches, **kwargs)


# -- switch-over cost -----------------------------------------------------------------


class TestSwitchCost:
    def setup_method(self):
        self.space = SpMVSpace(_matrix())
        self.cache = default_cache()

    def _state(self, r, c, cache=None):
        return TuningState(r, c, cache or self.cache, 10.0)

    def test_identical_tuning_is_free(self):
        a = self._state(2, 2)
        cost = OnlineRetuner.switch_cost(self.space, a, a)
        assert cost.total_seconds == 0.0

    def test_block_change_prices_reblocking_only(self):
        cost = OnlineRetuner.switch_cost(
            self.space, self._state(1, 1), self._state(3, 3)
        )
        assert cost.reblock_seconds > 0.0
        assert cost.reconfig_seconds == 0.0
        # Proportional to the work: the 3x3 blocking stores more (padded)
        # values than the matrix has nonzeros.
        nnz_floor = 6.0 * self.space.matrix.nnz / 400e6
        assert cost.reblock_seconds > nnz_floor

    def test_cache_change_prices_reconfiguration_only(self):
        from repro.spmv.cache import sample_cache_configs

        other = sample_cache_configs(1, np.random.default_rng(3))[0]
        assert other.key != self.cache.key
        cost = OnlineRetuner.switch_cost(
            self.space, self._state(2, 2), self._state(2, 2, other)
        )
        assert cost.reblock_seconds == 0.0
        assert cost.reconfig_seconds > 0.0


# -- decisions ------------------------------------------------------------------------


class TestDecisions:
    def test_bootstrap_is_truly_measured(self):
        source = _source()
        retuner = _retuner(source)
        state = retuner.bootstrap()
        true = source.space.evaluate(state.r, state.c, state.cache).mflops
        assert state.mflops == pytest.approx(true)

    def test_stationary_retune_holds_incumbent(self):
        source = _source()
        retuner = _retuner(source)
        retuner.bootstrap()
        initial = retuner.current.key
        decision = retuner.retune(model=None)
        # Exhaustive search found the true optimum at bootstrap; the
        # model-free re-tune over the unchanged space must re-find it.
        assert decision.action == "hold"
        assert retuner.current.key == initial
        assert decision.verified

    def test_drift_migrates_with_positive_net_gain(self):
        source = _source(drifting=True)
        retuner = _retuner(source)
        retuner.bootstrap()
        initial = retuner.current.key
        for _ in range(4):
            source.step()
        decision = retuner.retune(model=None)
        assert decision.action == "switch"
        assert retuner.current.key != initial
        assert decision.verified
        assert decision.net_gain_seconds > 0.0
        # The adopted candidate is a true measurement on the live revision.
        true = source.space.evaluate(
            retuner.current.r, retuner.current.c, retuner.current.cache
        ).mflops
        assert retuner.current.mflops == pytest.approx(true)

    def test_zero_tenure_blocks_switching(self):
        """With no time to amortize over, the switch-over cost always wins."""
        source = _source(drifting=True)
        retuner = _retuner(
            source,
            executions_per_observation=1e-9,
            default_tenure_observations=1e-9,
        )
        retuner.bootstrap()
        initial = retuner.current.key
        for _ in range(4):
            source.step()
        decision = retuner.retune(model=None)
        assert decision.action == "hold"
        assert "switch-over cost" in decision.reason
        assert retuner.current.key == initial

    def test_hysteresis_blocks_marginal_gains(self):
        """An absurd margin turns every improvement into a hold."""
        source = _source(drifting=True)
        retuner = _retuner(source, min_gain_ratio=1e6)
        retuner.bootstrap()
        initial = retuner.current.key
        for _ in range(4):
            source.step()
        decision = retuner.retune(model=None)
        assert decision.action == "hold"
        assert "hysteresis" in decision.reason
        assert retuner.current.key == initial

    def test_tenure_tracks_interretune_observations(self):
        source = _source()
        retuner = _retuner(
            source, executions_per_observation=2.0, default_tenure_observations=100.0
        )
        retuner.bootstrap()
        first = retuner.retune(model=None, observations=0)
        assert first.tenure_executions == pytest.approx(200.0)  # the prior
        second = retuner.retune(model=None, observations=40)
        assert second.tenure_executions == pytest.approx(80.0)  # 40 obs * 2

    def test_retune_before_bootstrap_raises(self):
        retuner = _retuner(_source())
        with pytest.raises(RuntimeError, match="bootstrap"):
            retuner.retune(model=None)

    def test_guarded_retune_keeps_last_good_on_error(self):
        source = _source()
        retuner = _retuner(source)
        retuner.bootstrap()
        initial = retuner.current.key

        def explode():
            raise RuntimeError("space went away")

        retuner.space_provider = explode
        respec = SimpleNamespace(model=None, records_ingested=0)
        decision = retuner.on_respec(respec)
        assert decision.action == "error"
        assert retuner.failures == 1
        assert "space went away" in retuner.last_error
        assert retuner.current.key == initial  # last-good kept
        # Recovery clears the sticky error.
        retuner.space_provider = lambda: source.space
        decision = retuner.on_respec(respec)
        assert decision.action in ("hold", "switch")
        assert retuner.last_error is None


# -- respecifier integration ----------------------------------------------------------


def _spmv_respecifier(source, seed=2):
    from repro.core.genetic import GeneticSearch
    from repro.core.dataset import ProfileDataset
    from repro.spmv.cache import SPMV_HARDWARE_NAMES
    from repro.spmv.space import SPMV_SOFTWARE_NAMES
    from repro.spmv import scattered_matrix

    dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
    rng = np.random.default_rng(7)
    for matrix in (
        fem_matrix(12, 2, 2, 4, 11, "aux-fem"),
        scattered_matrix(40, 130, 12, "aux-scattered"),
    ):
        aux = SpMVStreamSource(matrix, seed=3, block_sizes=TEST_BLOCKS, n_caches=4)
        dataset.extend(aux.sample(24, rng).records)
    dataset.extend(source.sample(24, rng).records)
    search = GeneticSearch(population_size=8, seed=seed)
    respec = StreamingRespecifier(dataset, search, FAST_DRIFT)
    respec.bootstrap(generations=1)
    return respec


class TestRespecifierIntegration:
    def test_respec_hook_retunes_and_stats_nest(self):
        source = _source()
        respec = _spmv_respecifier(source)
        retuner = _retuner(source).attach(respec)
        retuner.bootstrap()
        assert respec.retuner is retuner
        respec.respec(generations=1)
        assert retuner.retunes == 1
        assert retuner.decisions[-1].trigger == "respec"
        stats = respec.stats_dict()
        assert stats["retune"]["retunes"] == 1
        assert stats["retune"]["current"]["cache"] == retuner.current.cache.key

    def test_refresh_hook_honours_cadence(self):
        source = _source()
        respec = _spmv_respecifier(source)
        retuner = _retuner(source, retune_every_refreshes=2).attach(respec)
        retuner.bootstrap()
        rng = np.random.default_rng(3)
        respec.set_baseline(10.0)  # roomy: refresh, never trip
        for _ in range(4):
            respec.ingest(source.sample(6, rng))
        assert respec.refreshes == 4
        assert retuner.retunes == 2  # every second refresh
        assert all(d.trigger == "refresh" for d in retuner.decisions)

    def test_refresh_hook_disabled_by_default(self):
        source = _source()
        respec = _spmv_respecifier(source)
        retuner = _retuner(source).attach(respec)
        retuner.bootstrap()
        respec.set_baseline(10.0)
        respec.ingest(source.sample(6, np.random.default_rng(3)))
        assert respec.refreshes >= 1
        assert retuner.retunes == 0


# -- serving path ---------------------------------------------------------------------


class TestServingPath:
    def test_observe_stream_respec_retunes_into_stats_and_prometheus(
        self, tmp_path
    ):
        from repro.serve.bootstrap import build_service

        source = _source()
        respec = _spmv_respecifier(source)
        server, serving, _ = build_service(
            respec.dataset,
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
        )
        # Rewire the service's streaming path onto the SpMV respecifier so
        # observe_stream frames drive the same model the retuner consumes.
        serving.attach_stream(respec)
        retuner = _retuner(source).attach(respec)
        retuner.bootstrap()
        respec.set_baseline(1e-6)  # any real error trips the detector

        def _profiles(n, seed):
            batch = source.sample(n, np.random.default_rng(seed))
            return [
                {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
                for p in batch.records
            ]

        async def scenario():
            # FAST_DRIFT's patience wants consecutive over-threshold
            # batches before latching; feed frames until the respec lands.
            for attempt in range(4):
                reply = await serving.handle_observe_stream(
                    {
                        "application": source.application,
                        "profiles": _profiles(8, 31 + attempt),
                    }
                )
                assert reply["ok"]
                if reply["respec_scheduled"]:
                    break
            assert reply["respec_scheduled"]
            await serving.wait_for_update()

        try:
            asyncio.run(scenario())
            assert respec.respecs == 1
            assert retuner.retunes == 1
            stats = serving.stats_dict()
            retune_stats = stats["stream"]["retune"]
            assert retune_stats["retunes"] == 1
            assert retune_stats["current"]["r"] == retuner.current.r
            assert retune_stats["decisions"][-1]["trigger"] == "respec"
            assert retune_stats["decisions"][-1]["verified"]
            dump = obs.prometheus_dump(labels={"shard": "0"})
            assert 'repro_retune_block_rows{shard="0"}' in dump
            assert 'repro_retune_current_mflops{shard="0"}' in dump
        finally:
            serving.close()


# -- the demo scenario (acceptance criterion) -----------------------------------------


class TestRetuneDemoScenario:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import retune_demo

        return retune_demo.run(SCALES["small"])

    def test_drifting_migrates_across_a_respec(self, result):
        drift = result["drifting"]
        assert drift["trips"] >= 1
        assert drift["switches"] >= 1
        assert drift["final"] != drift["initial"]
        assert any(
            d["action"] == "switch" and d["trigger"] == "respec"
            for d in drift["decisions"]
        )

    def test_stationary_holds_initial_choice(self, result):
        stat = result["stationary"]
        assert stat["trips"] == 0
        assert stat["retunes"] >= 1  # the holds were actually exercised
        assert stat["switches"] == 0
        assert stat["final"] == stat["initial"]

    def test_every_switch_is_verified_and_amortized(self, result):
        for name in ("drifting", "stationary"):
            for d in result[name]["decisions"]:
                if d["action"] != "switch":
                    continue
                assert d["verified"]
                assert d["net_gain_seconds"] > 0.0
                assert d["candidate_mflops"] > d["incumbent_mflops"]

    def test_check_passes_and_report_renders(self, result):
        from repro.experiments import retune_demo

        retune_demo.check(result)  # must not raise
        text = retune_demo.report(result)
        assert "OK:" in text
        assert result["drifting"]["final"] in text
