"""Property tests for the GPU warp-throughput backend.

Mirrors the style of ``tests/test_kernels_batched.py``: hypothesis
strategies over (shard, design-point) pairs, with the model's three
advertised properties enforced exactly:

* **Monotonicity** — more resident warps, deeper memory queues, more
  SMs, or a wider coalescing segment never *increase* the modeled
  cycle count.
* **Scale invariance** — the model is homogeneous of degree one in the
  shard's counts, so CPI is unchanged when the workload is tiled.
* **Determinism** — bit-identical results across fresh simulators and
  across ``parallel_map`` worker counts.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass, Trace, empty_trace
from repro.parallel import parallel_map
from repro.uarch import compute_shard_stats, gpu_config_from_levels
from repro.uarch.gpu import (
    _GPU_LEVEL_COUNTS,
    GpuSimulator,
    coalescing_fraction,
    gpu_cycle_breakdown,
    simulate_gpu_cpi,
    warps_in_flight,
)


def _make_shard(n=400, mem_rate=0.3, mispredicts=5, seed=0):
    rng = np.random.default_rng(seed)
    data = empty_trace(n)
    data["op"] = rng.choice(
        [int(OpClass.INT_ALU), int(OpClass.MEMORY), int(OpClass.CONTROL)],
        size=n,
        p=[1 - mem_rate - 0.1, mem_rate, 0.1],
    )
    control = np.flatnonzero(data["op"] == int(OpClass.CONTROL))
    data["taken"][control] = True
    data["miss"][control[:mispredicts]] = True
    mem = data["op"] == int(OpClass.MEMORY)
    data["addr"][mem] = rng.integers(0, 2000, size=int(mem.sum())) * 64
    data["iaddr"] = (np.arange(n) * 4) % 4096
    data["dep"] = rng.integers(0, 6, size=n)
    return Trace(data, f"gpu-shard-{seed}-{n}-{mem_rate}-{mispredicts}")


# A small pool of pre-computed shard statistics so hypothesis examples
# don't pay the trace + stack-distance cost per draw.
_STATS = {seed: compute_shard_stats(_make_shard(seed=seed)) for seed in range(4)}

_levels_strategy = st.tuples(
    *(st.integers(0, count - 1) for count in _GPU_LEVEL_COUNTS)
)

#: Dimensions whose higher levels strictly add parallel resources.
_MORE_PARALLEL_DIMS = (0, 1, 2, 3, 8, 9, 11, 12)


class TestMonotonicity:
    @given(
        st.sampled_from(sorted(_STATS)),
        _levels_strategy,
        st.sampled_from(_MORE_PARALLEL_DIMS),
    )
    @settings(max_examples=120, deadline=None)
    def test_more_parallel_hardware_never_slower(self, seed, levels, dim):
        """Raising warps/SMs/bandwidth/coalescing/queue levels never
        increases the modeled cycle count."""
        if levels[dim] + 1 >= _GPU_LEVEL_COUNTS[dim]:
            levels = tuple(
                0 if i == dim else lv for i, lv in enumerate(levels)
            )
        raised = tuple(
            lv + 1 if i == dim else lv for i, lv in enumerate(levels)
        )
        stats = _STATS[seed]
        base = gpu_cycle_breakdown(stats, gpu_config_from_levels(levels)).total
        more = gpu_cycle_breakdown(stats, gpu_config_from_levels(raised)).total
        assert more <= base + 1e-9 * max(1.0, base)

    @given(_levels_strategy, st.sampled_from((1, 2, 3)))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_monotone_in_residency_resources(self, levels, dim):
        """More warp slots, register file, or shared memory never reduce
        warps in flight."""
        if levels[dim] + 1 >= _GPU_LEVEL_COUNTS[dim]:
            levels = tuple(
                0 if i == dim else lv for i, lv in enumerate(levels)
            )
        raised = tuple(
            lv + 1 if i == dim else lv for i, lv in enumerate(levels)
        )
        assert warps_in_flight(
            gpu_config_from_levels(raised)
        ) >= warps_in_flight(gpu_config_from_levels(levels))

    @given(st.sampled_from(sorted(_STATS)), _levels_strategy)
    @settings(max_examples=60, deadline=None)
    def test_wider_segment_coalesces_no_fewer_accesses(self, seed, levels):
        stats = _STATS[seed]
        fractions = [
            coalescing_fraction(
                stats,
                gpu_config_from_levels(
                    tuple(lv if i != 9 else co for i, lv in enumerate(levels))
                ),
            )
            for co in range(_GPU_LEVEL_COUNTS[9])
        ]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
        assert all(0.0 <= f <= 1.0 for f in fractions)


def _scaled_stats(stats, k):
    """The statistics of ``stats`` tiled ``k`` times (exact construction)."""
    return dataclasses.replace(
        stats,
        name=f"{stats.name}-x{k}",
        n=stats.n * k,
        opclass_counts=stats.opclass_counts * k,
        taken=stats.taken * k,
        mispredicts=stats.mispredicts * k,
        data_stack=np.sort(np.tile(stats.data_stack, k)),
        inst_stack=np.sort(np.tile(stats.inst_stack, k)),
        n_data_accesses=stats.n_data_accesses * k,
        n_inst_accesses=stats.n_inst_accesses * k,
        dataflow_cycles={w: c * k for w, c in stats.dataflow_cycles.items()},
    )


class TestScaleInvariance:
    @given(
        st.sampled_from(sorted(_STATS)),
        _levels_strategy,
        st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_cpi_invariant_under_tiling(self, seed, levels, k):
        """The throughput model is homogeneous: tiling the workload k
        times scales cycles by k and leaves CPI unchanged."""
        stats = _STATS[seed]
        config = gpu_config_from_levels(levels)
        base = simulate_gpu_cpi(stats, config)
        tiled = simulate_gpu_cpi(_scaled_stats(stats, k), config)
        assert tiled == pytest.approx(base, rel=1e-9)


def _cpi_job(args):
    seed, levels = args
    shard = _make_shard(seed=seed)
    return GpuSimulator().cpi(shard, gpu_config_from_levels(levels))


class TestDeterminism:
    def test_fresh_simulators_agree(self):
        shard = _make_shard(seed=1)
        config = gpu_config_from_levels((3, 5, 3, 4, 3, 3, 4, 0, 3, 2, 2, 3, 2))
        assert GpuSimulator().cpi(shard, config) == GpuSimulator().cpi(
            shard, config
        )

    def test_parallel_map_worker_count_invariant(self):
        """GPU evaluations return bit-identical results at any worker
        count (serial path vs process pool)."""
        jobs = [
            (seed, (seed % 4, 2 * (seed % 3), 1, 2, seed % 4, 3, 2, 1, 2, seed % 3, 2, 1, 0))
            for seed in range(6)
        ]
        serial = parallel_map(_cpi_job, jobs, n_workers=1)
        pooled = parallel_map(_cpi_job, jobs, n_workers=2)
        assert serial == pooled

    def test_batched_path_bit_identical_to_per_pair(self):
        shard = _make_shard(seed=2)
        rng = np.random.default_rng(7)
        from repro.uarch import sample_gpu_configs

        configs = sample_gpu_configs(12, rng)
        sim = GpuSimulator()
        batch = sim.cpi_batch(shard, configs)
        per_pair = np.array([sim.cpi(shard, c) for c in configs])
        assert np.array_equal(batch, per_pair)
