"""The sharded serving tier: fleet lifecycle, swap atomicity, drain.

The properties DESIGN.md §10 promises:

* a fleet of N worker processes serves the single public port in either
  accept mode (kernel ``SO_REUSEPORT`` balancing or the round-robin
  router fallback) and is indistinguishable from one server to clients;
* fleet-wide model swaps are version-atomic — while a publish rolls out,
  clients observe versions from ``{v, v+1}`` only, and every prediction
  is bit-identical to the single-process server holding the same model
  (property-tested with hypothesis);
* a dead shard is respawned by the supervisor and rejoins on the latest
  registry version;
* ``serve --shards N`` drains on SIGTERM: flushes the metrics JSONL and
  exits 0 (tested against the real CLI in a subprocess).
"""

from __future__ import annotations

import copy
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    BatchConfig,
    ModelSlot,
    PredictionServer,
    ServeClient,
    ServerThread,
    build_sharded_service,
    demo_dataset,
    supports_reuse_port,
)
from repro.serve.shard import ShardRouter, _reserve_reuse_port

N_SHARDS = 3

#: One prediction row (3 software + 2 hardware characteristics).
ROWS = st.lists(
    st.lists(
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
        min_size=5,
        max_size=5,
    ),
    min_size=1,
    max_size=4,
)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A 3-shard fleet plus a single-process twin holding the same model."""
    supervisor = build_sharded_service(
        demo_dataset(seed=0),
        tmp_path_factory.mktemp("registry"),
        n_shards=N_SHARDS,
        generations=1,
        population_size=6,
        batch_config=BatchConfig(max_batch=32, max_latency_s=0.001),
    ).start()
    model, version = supervisor.registry.load(supervisor.key)
    twin = PredictionServer(ModelSlot(model, version))
    twin_thread = ServerThread(twin).start()
    try:
        yield supervisor, twin_thread.port
    finally:
        twin_thread.stop()
        supervisor.drain()


def _predict(port: int, row) -> dict:
    with ServeClient(port=port, timeout=10.0) as client:
        return client.predict_row(list(row))


# -- fleet basics ----------------------------------------------------------------------


def test_supports_reuse_port_is_a_real_probe():
    verdict = supports_reuse_port()
    assert isinstance(verdict, bool)
    # The probe, not the constant, is the source of truth — but a platform
    # without the constant can never support it.
    import socket

    if not hasattr(socket, "SO_REUSEPORT"):
        assert verdict is False


def test_reserve_reuse_port_pins_a_port():
    if not supports_reuse_port():
        pytest.skip("platform without SO_REUSEPORT")
    sock, port = _reserve_reuse_port("127.0.0.1", 0)
    try:
        assert port > 0
        sock2, port2 = _reserve_reuse_port("127.0.0.1", port)
        sock2.close()
        assert port2 == port
    finally:
        sock.close()


def test_fleet_serves_all_shards_live(fleet):
    supervisor, _ = fleet
    reply = _predict(supervisor.port, [1.0, 0.5, 0.2, 1.0, 1.5])
    assert reply["ok"] and reply["model_version"] >= 1
    stats = supervisor.fleet_stats()
    assert stats["shards"] == N_SHARDS
    assert stats["live"] == N_SHARDS
    assert stats["mode"] in ("reuse_port", "router")
    assert set(stats["per_shard"]) == {"0", "1", "2"}
    assert all(s["ok"] for s in stats["per_shard"].values())


def test_router_mode_rotates_across_shards(tmp_path):
    """The fallback path must spread fresh connections over every shard."""
    supervisor = build_sharded_service(
        demo_dataset(seed=0),
        tmp_path / "registry",
        n_shards=2,
        reuse_port=False,
        generations=1,
        population_size=6,
    )
    with supervisor:
        assert supervisor.mode == "router"
        seen = set()
        for _ in range(6):
            with ServeClient(port=supervisor.port, timeout=10.0) as client:
                seen.add(client.stats()["shard"])
        assert seen == {0, 1}


def test_router_fails_over_past_a_dead_backend():
    dead_then_live = [0]  # port 0 always refuses; repaired below

    router = ShardRouter("127.0.0.1", 0, lambda: list(dead_then_live))
    port = router.start()
    try:
        # Stand in a real server for the live target.
        import socketserver

        class Echo(socketserver.StreamRequestHandler):
            def handle(self):
                data = self.rfile.read(4)
                self.wfile.write(data)

        backend = socketserver.ThreadingTCPServer(("127.0.0.1", 0), Echo)
        backend.daemon_threads = True
        threading.Thread(target=backend.serve_forever, daemon=True).start()
        dead_then_live.append(backend.server_address[1])

        import socket

        with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
            sock.sendall(b"ping")
            assert sock.recv(4) == b"ping"
        backend.shutdown()
        backend.server_close()
    finally:
        router.stop()


def test_observe_is_forwarded_to_the_control_plane(fleet):
    """Any shard accepts observations; the single learner answers them."""
    supervisor, _ = fleet
    profiles = [
        {"x": [0.1 * i, 0.2, 0.3], "y": [1.0, 1.5], "z": 2.0 + 0.01 * i}
        for i in range(3)
    ]
    with ServeClient(port=supervisor.port, timeout=10.0) as client:
        reply = client.observe("shard-observe-app", profiles)
    assert reply["ok"]
    assert "accurate" in reply and "median_error" in reply
    assert supervisor.serving.stats.observations >= 1


def test_reload_is_version_gated(fleet):
    """Re-delivered/reordered reload broadcasts can never roll back."""
    supervisor, _ = fleet
    with supervisor._handles_lock:
        handle = next(iter(supervisor._handles.values()))
    with ServeClient(port=handle.private_port, timeout=10.0) as client:
        current = client.info()["model_version"]
        stale = client.request({"op": "reload", "version": current})
        assert stale["reloaded"] is False
        assert stale["model_version"] == current
        way_stale = client.request({"op": "reload", "version": 0})
        assert way_stale["reloaded"] is False


def test_shutdown_op_recycles_exactly_one_shard(fleet):
    """A shard is cattle: stopping one respawns it; the fleet never blinks."""
    supervisor, _ = fleet
    with supervisor._handles_lock:
        handle = supervisor._handles[0]
    old_pid = handle.process.pid
    respawns_before = supervisor.respawns
    with ServeClient(port=handle.private_port, timeout=10.0) as client:
        client.shutdown()
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        with supervisor._handles_lock:
            replacement = supervisor._handles.get(0)
        if (
            replacement is not None
            and replacement.process.pid != old_pid
            and replacement.process.is_alive()
        ):
            break
        time.sleep(0.05)
    else:
        pytest.fail("shard 0 was not respawned")
    assert supervisor.respawns == respawns_before + 1
    # The whole fleet (including the respawn) still serves.
    reply = _predict(supervisor.port, [1.0, 0.5, 0.2, 1.0, 1.5])
    assert reply["ok"]
    assert supervisor.fleet_stats()["live"] == N_SHARDS


# -- swap atomicity and single-process equivalence (hypothesis) ------------------------


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=ROWS)
def test_fleet_predictions_bit_identical_to_single_process(fleet, rows):
    """Whatever shard answers, the bytes match the one-process server."""
    supervisor, twin_port = fleet
    for row in rows:
        sharded = _predict(supervisor.port, row)
        single = _predict(twin_port, row)
        assert sharded["prediction"] == single["prediction"]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=ROWS)
def test_fleet_swap_atomicity_only_v_and_v_plus_1_observed(fleet, rows):
    """During a publish rollout across >= 3 shards, every client-visible
    version is in ``{v, v+1}``, every prediction stays bit-identical to
    the single-process twin, and the fleet converges on ``v+1``."""
    supervisor, twin_port = fleet
    v = supervisor.serving.slot.version
    model, _ = supervisor.registry.load(supervisor.key, v)

    observed: set = set()
    failures: list = []
    stop = threading.Event()

    def poller(worker_id: int) -> None:
        try:
            with ServeClient(port=supervisor.port, timeout=10.0) as client:
                i = 0
                while not stop.is_set():
                    reply = client.predict_row(list(rows[i % len(rows)]))
                    observed.add(reply["model_version"])
                    expected = _predict(twin_port, rows[i % len(rows)])
                    if reply["prediction"] != expected["prediction"]:
                        failures.append((worker_id, reply, expected))
                    i += 1
        except Exception as exc:  # any failure mid-swap is a finding
            failures.append((worker_id, repr(exc)))

    pollers = [
        threading.Thread(target=poller, args=(i,)) for i in range(N_SHARDS)
    ]
    for thread in pollers:
        thread.start()
    try:
        # The same model re-published: the version moves, the bits do not,
        # so the twin stays a valid reference across the swap.
        new_version = supervisor.publish_model(copy.deepcopy(model))
    finally:
        time.sleep(0.05)  # let pollers straddle the post-swap instant
        stop.set()
        for thread in pollers:
            thread.join(30)

    assert not failures, failures[:3]
    assert new_version == v + 1
    assert observed <= {v, v + 1}, f"saw {observed}, rollout was {v}->{v + 1}"
    stats = supervisor.fleet_stats()
    assert stats["versions"] == [new_version]


# -- drain: the CLI under SIGTERM ------------------------------------------------------


class TestSigtermDrain:
    def test_cli_drains_flushes_metrics_and_exits_zero(self, tmp_path):
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"),
            REPRO_REPORT_DIR=str(tmp_path / "reports"),
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments", "serve",
                "--port", "0", "--shards", "2",
                "--registry", str(tmp_path / "registry"),
                "--generations", "1", "--population-size", "6",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=tmp_path,
        )
        try:
            # Wait for the fleet to come up (the GA bootstrap dominates).
            deadline = time.monotonic() + 120
            lines = []
            for line in proc.stdout:
                lines.append(line)
                if line.startswith("serving "):
                    break
                assert time.monotonic() < deadline, "".join(lines)
            assert any(ln.startswith("serving ") for ln in lines), "".join(lines)

            proc.send_signal(signal.SIGTERM)
            out = proc.stdout.read()
            assert proc.wait(timeout=60) == 0, out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        assert "draining fleet" in out and "fleet drained, exiting" in out
        jsonl = tmp_path / "reports" / "metrics_serve_shards.jsonl"
        assert jsonl.exists(), out
        runs = {
            json.loads(line)["run"]
            for line in jsonl.read_text().splitlines()
            if line.strip()
        }
        assert {"shard0", "shard1", "fleet", "supervisor"} <= runs


# -- fleet observability ---------------------------------------------------------------


def test_prometheus_dump_labels_every_shard(fleet):
    supervisor, _ = fleet
    _predict(supervisor.port, [1.0, 0.5, 0.2, 1.0, 1.5])  # count something
    text = supervisor.prometheus_dump()
    for shard_id in range(N_SHARDS):
        assert f'shard="{shard_id}"' in text
    assert 'shard="supervisor"' in text
    # TYPE headers are deduplicated across the fleet's series.
    requests_types = [
        line
        for line in text.splitlines()
        if line.startswith("# TYPE repro_serve_requests ")
    ]
    assert len(requests_types) == 1


def test_fleet_metrics_merge_is_deterministic(fleet):
    supervisor, _ = fleet
    snapshots, merged = supervisor.fleet_metrics()
    assert [shard_id for shard_id, _ in snapshots] == sorted(
        shard_id for shard_id, _ in snapshots
    )
    _, merged_again = supervisor.fleet_metrics()
    # Quiescent fleet: two in-order merges agree exactly on everything the
    # scrape itself does not perturb (the scrape adds requests).
    for name, value in merged["counters"].items():
        if name.startswith("serve.requests"):
            continue
        assert merged_again["counters"][name] >= value
    total = sum(
        snap["counters"].get("serve.predictions", 0) for _, snap in snapshots
    )
    assert merged["counters"].get("serve.predictions", 0) == total


def test_fleet_stats_aggregates_per_shard(fleet):
    supervisor, _ = fleet
    _predict(supervisor.port, [1.0, 0.5, 0.2, 1.0, 1.5])
    stats = supervisor.fleet_stats()
    assert stats["requests"] == sum(
        s["requests"] for s in stats["per_shard"].values() if s.get("ok")
    )
    assert stats["supervisor_version"] in stats["versions"]
