"""Tests for the batched fitness engine (column store + Gram LOO sweep).

Three layers of checks:

* the :class:`ColumnStore` reproduces ``DesignMatrixBuilder`` columns
  bit-for-bit when both are fitted on the same dataset;
* the engine's Gram-path fits match a row-level weighted-``lstsq``
  reference over the *same shared columns* to ~1e-8, and the forced
  ``lstsq`` fallback agrees with the Gram path;
* engine fitness tracks the reference oracle closely enough to preserve
  ranking on structured data, and degenerate inputs fail the same way.
"""

import numpy as np
import pytest

from repro.core import (
    ColumnStore,
    DesignMatrixBuilder,
    FitnessEngine,
    GeneticSearch,
    ModelSpec,
    TransformKind,
    derive_app_splits,
    evaluate_spec,
    fit_ols,
    median_error,
    prune_design,
)
from repro.core.engine import evaluate_chunk
from repro.core.fitness import FAILED_FITNESS
from tests.conftest import make_synthetic_dataset


def spec_from_genes(names, genes, interactions=frozenset()):
    return ModelSpec(
        transforms={n: TransformKind(g) for n, g in zip(names, genes)},
        interactions=interactions,
    )


SPEC_CASES = [
    ((1, 1, 1, 1), frozenset()),
    ((2, 3, 1, 4), frozenset({("x1", "y1")})),
    ((0, 0, 1, 0), frozenset({("x2", "y2")})),
    ((4, 4, 4, 4), frozenset({("x1", "x2"), ("x1", "y1")})),
    ((0, 0, 0, 0), frozenset()),  # intercept-only
]


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(nonlinear=True)


class TestColumnStore:
    @pytest.mark.parametrize("genes,interactions", SPEC_CASES)
    def test_matches_design_matrix_builder(self, dataset, genes, interactions):
        """Column selection must equal a builder fitted on the same data,
        bit-for-bit, including column names and ordering."""
        spec = spec_from_genes(dataset.variable_names, genes, interactions)
        store = ColumnStore(dataset)
        design, names = store.design(spec)
        builder = DesignMatrixBuilder(spec)
        reference = builder.fit_transform(dataset)
        assert tuple(names) == builder.column_names
        assert design.shape == reference.shape
        assert np.array_equal(design, reference)

    def test_columns_cached_across_specs(self, dataset):
        store = ColumnStore(dataset)
        names = dataset.variable_names
        store.design(spec_from_genes(names, (1, 2, 3, 4)))
        builds = store.builds
        store.design(spec_from_genes(names, (1, 2, 3, 4)))
        assert store.builds == builds  # second assembly is all hits
        assert store.hits > 0
        assert 0.0 < store.hit_rate() <= 1.0

    def test_unknown_variable_rejected(self, dataset):
        store = ColumnStore(dataset)
        with pytest.raises(ValueError):
            store.stabilized("nope")


class TestEngineAgainstRowLevelReference:
    """The Gram path must match row-level weighted lstsq over the same
    shared columns — isolating the linear-algebra reformulation from the
    (documented) shared-transform deviation."""

    def reference_fitness(self, dataset, spec, splits, weight=2.0):
        store = ColumnStore(dataset)
        design, names = store.design(spec)
        if design.shape[1]:
            pruned, kept_names, _ = prune_design(design, names)
        else:
            pruned, kept_names = design, []
        y = np.log(dataset.targets())
        targets = dataset.targets()
        per_app = {}
        for app in dataset.applications:
            train_idx, val_idx = splits[app]
            mask = np.ones(len(dataset), dtype=bool)
            mask[val_idx] = False
            weights = np.ones(len(dataset))
            weights[train_idx] = weight
            fit = fit_ols(pruned[mask], y[mask], kept_names, weights[mask])
            beta = np.concatenate([[fit.intercept], fit.coefficients])
            augmented = np.column_stack([np.ones(len(dataset)), pruned])
            linear = np.clip(augmented[val_idx] @ beta, -50.0, 50.0)
            predictions = np.exp(linear)
            per_app[app] = min(
                median_error(predictions, targets[val_idx]), FAILED_FITNESS
            )
        return per_app

    @pytest.mark.parametrize("genes,interactions", SPEC_CASES)
    def test_gram_matches_row_level_fits(self, dataset, genes, interactions):
        spec = spec_from_genes(dataset.variable_names, genes, interactions)
        splits = derive_app_splits(dataset, 77)
        engine = FitnessEngine(dataset, 77)
        result = engine.evaluate(spec)
        expected = self.reference_fitness(dataset, spec, splits)
        for app, error in expected.items():
            assert result.per_application[app] == pytest.approx(error, abs=1e-8)

    def test_forced_fallback_matches_gram(self, dataset):
        """condition_limit below 1 rejects every Cholesky solve, forcing
        the lstsq fallback — which must agree with the Gram path."""
        spec = spec_from_genes(
            dataset.variable_names, (2, 3, 1, 4), frozenset({("x1", "y1")})
        )
        gram_engine = FitnessEngine(dataset, 5)
        fallback_engine = FitnessEngine(dataset, 5, condition_limit=0.5)
        a = gram_engine.evaluate(spec)
        b = fallback_engine.evaluate(spec)
        assert gram_engine.lstsq_fallbacks == 0
        assert gram_engine.gram_fits == len(dataset.applications)
        assert fallback_engine.gram_fits == 0
        assert fallback_engine.lstsq_fallbacks == len(dataset.applications)
        assert a.mean_error == pytest.approx(b.mean_error, abs=1e-8)


class TestEngineAgainstOracle:
    def test_tracks_reference_oracle(self, dataset):
        """Engine fitness differs from the oracle only by the documented
        shared-transform/shared-prune deviations — small on this data."""
        splits = derive_app_splits(dataset, 9)
        engine = FitnessEngine(dataset, 9)
        names = dataset.variable_names
        for genes, interactions in SPEC_CASES[:4]:
            spec = spec_from_genes(names, genes, interactions)
            oracle = evaluate_spec(
                spec, dataset, np.random.default_rng(0), splits=splits
            )
            batched = engine.evaluate(spec)
            assert batched.mean_error == pytest.approx(
                oracle.mean_error, abs=5e-3
            )

    def test_degenerate_application_fails(self):
        ds = make_synthetic_dataset(n_per_app=1, apps=("solo", "duo"))
        engine = FitnessEngine(ds, 0)
        spec = spec_from_genes(ds.variable_names, (1, 1, 1, 1))
        result = engine.evaluate(spec)
        assert result.per_application["solo"] == FAILED_FITNESS
        assert result.per_application["duo"] == FAILED_FITNESS

    def test_non_positive_targets_fail_like_oracle(self):
        from repro.core import ProfileDataset, ProfileRecord

        ds = ProfileDataset(("x1",), ("y1",))
        rng = np.random.default_rng(0)
        for app in ("a", "b"):
            for _ in range(6):
                ds.add(
                    ProfileRecord(
                        app, rng.normal(size=1), rng.normal(size=1), -1.0
                    )
                )
        engine = FitnessEngine(ds, 0)
        spec = spec_from_genes(ds.variable_names, (1, 1))
        result = engine.evaluate(spec)
        assert result.mean_error == FAILED_FITNESS

    def test_invalid_response_rejected(self, dataset):
        with pytest.raises(ValueError):
            FitnessEngine(dataset, 0, response="cube")

    def test_stats_accumulate(self, dataset):
        engine = FitnessEngine(dataset, 0)
        spec = spec_from_genes(dataset.variable_names, (1, 2, 1, 1))
        engine.evaluate(spec)
        engine.evaluate(spec)
        stats = engine.stats()
        assert stats["specs_evaluated"] == 2
        assert stats["gram_fits"] == 2 * len(dataset.applications)
        assert stats["column_hit_rate"] > 0.0


class TestEvaluateChunk:
    def test_matches_engine(self, dataset):
        names = dataset.variable_names
        specs = [spec_from_genes(names, g, i) for g, i in SPEC_CASES[:3]]
        engine = FitnessEngine(dataset, 13)
        expected = engine.evaluate_many(specs)
        results, stats = evaluate_chunk(dataset, 13, specs)
        assert [r.mean_error for r in results] == pytest.approx(
            [r.mean_error for r in expected]
        )
        assert stats["specs_evaluated"] == len(specs)


class TestDeriveAppSplits:
    def test_partition_and_determinism(self, dataset):
        splits = derive_app_splits(dataset, 42)
        again = derive_app_splits(dataset, 42)
        seen = []
        for app in dataset.applications:
            train, val = splits[app]
            t2, v2 = again[app]
            assert np.array_equal(train, t2) and np.array_equal(val, v2)
            assert len(train) > 0 and len(val) > 0
            rows = set(train) | set(val)
            app_rows = {
                i for i, r in enumerate(dataset.records) if r.application == app
            }
            assert rows == app_rows
            seen.extend(rows)
        assert sorted(seen) == list(range(len(dataset)))

    def test_seed_changes_splits(self, dataset):
        a = derive_app_splits(dataset, 1)
        b = derive_app_splits(dataset, 2)
        app = dataset.applications[0]
        assert not np.array_equal(a[app][0], b[app][0])

    def test_independent_of_other_applications(self):
        """An application's split depends only on (seed, its own rows) —
        not on which other applications share the dataset."""
        full = make_synthetic_dataset(apps=("alpha", "beta", "gamma"))
        reduced = full.without_application("gamma")
        full_splits = derive_app_splits(full, 3)
        reduced_splits = derive_app_splits(reduced, 3)
        for app in ("alpha", "beta"):
            assert np.array_equal(full_splits[app][0], reduced_splits[app][0])
            assert np.array_equal(full_splits[app][1], reduced_splits[app][1])

    def test_single_record_application_gets_empty_validation(self):
        ds = make_synthetic_dataset(n_per_app=1, apps=("solo",))
        train, val = derive_app_splits(ds, 0)["solo"]
        assert len(train) == 1 and len(val) == 0

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(ValueError):
            derive_app_splits(dataset, 0, train_fraction=1.0)


class TestFixedSplitOracle:
    def test_evaluate_spec_with_splits_is_noise_free(self, dataset):
        """With fixed splits, identical specs score identically no matter
        the rng — the correctness prerequisite for memoization."""
        spec = spec_from_genes(dataset.variable_names, (1, 1, 1, 1))
        splits = derive_app_splits(dataset, 21)
        a = evaluate_spec(spec, dataset, np.random.default_rng(0), splits=splits)
        b = evaluate_spec(spec, dataset, np.random.default_rng(999), splits=splits)
        assert a.mean_error == b.mean_error
        assert a.per_application == b.per_application


class TestSearchIntegration:
    def test_memoization_reduces_evaluations(self, dataset):
        search = GeneticSearch(population_size=10, seed=0, n_workers=1)
        search.run(dataset, generations=4)
        stats = search.last_eval_stats
        assert stats["candidates_scored"] == 10 * 4
        assert stats["memo_hits"] > 0  # elites are never re-scored
        assert (
            stats["engine_evaluations"]
            == stats["candidates_scored"] - stats["memo_hits"]
        )
        assert 0.0 < stats["memo_hit_rate"] < 1.0
        assert stats["column_hit_rate"] > 0.5

    def test_engine_and_oracle_paths_agree_on_winner(self, dataset):
        """The benchmark asserts this at scale; keep a miniature version
        in the unit suite."""
        engine = GeneticSearch(population_size=10, seed=1, n_workers=1).run(
            dataset, generations=3
        )
        oracle = GeneticSearch(
            population_size=10, seed=1, n_workers=1, evaluator=evaluate_spec
        ).run(dataset, generations=3)
        assert (
            engine.best_chromosome == oracle.best_chromosome
            or engine.best_fitness.fitness
            == pytest.approx(oracle.best_fitness.fitness, abs=1e-2)
        )

    def test_parallel_engine_matches_serial(self, dataset):
        serial = GeneticSearch(population_size=6, seed=4, n_workers=1).run(
            dataset, generations=2
        )
        parallel = GeneticSearch(population_size=6, seed=4, n_workers=2).run(
            dataset, generations=2
        )
        assert [f.fitness for f in serial.fitnesses] == pytest.approx(
            [f.fitness for f in parallel.fitnesses]
        )
        assert serial.best_chromosome == parallel.best_chromosome
