"""Unit tests for cross-backend model transfer (repro.core.transfer).

The end-to-end CPU→GPU study lives in the ``transfer`` demo and its
benchmark; these tests pin the primitives — warm-start seeding order,
generations-to-target accounting, the paired-trial aggregation, and the
shape-compatibility guard — on a tiny synthetic space where the answers
are known.
"""

import numpy as np
import pytest

from repro.core import ProfileDataset, ProfileRecord
from repro.core.genetic import GenerationRecord, GeneticSearch
from repro.core.transfer import (
    TransferOutcome,
    TransferTrial,
    generations_to_target,
    shared_representation_score,
    transfer_search,
    warm_start_population,
)

X_NAMES = ("x1", "x2", "x3")
Y_NAMES = ("y1", "y2")


def _dataset(n=60, seed=0, shift=0.0):
    """A small profile set whose response has known shared structure."""
    rng = np.random.default_rng(seed)
    ds = ProfileDataset(X_NAMES, Y_NAMES)
    for _ in range(n):
        x = rng.normal(size=3)
        y = rng.uniform(0.5, 2.0, size=2)
        z = 2.0 + 0.5 * x[0] + 0.8 * y[0] + (0.3 + shift) * x[0] * y[0]
        ds.add(ProfileRecord("app0", x, y, float(np.exp(z / 4.0))))
    return ds


@pytest.fixture(scope="module")
def source_result():
    return GeneticSearch(population_size=8, seed=1).run(_dataset(seed=0), 3)


class TestGenerationsToTarget:
    def _history(self, fitnesses):
        return [
            GenerationRecord(g + 1, f, f, f)
            for g, f in enumerate(fitnesses)
        ]

    def test_first_generation_reaching_target(self):
        history = self._history([0.9, 0.5, 0.3, 0.3])
        assert generations_to_target(history, 0.5) == 2

    def test_exact_match_counts(self):
        history = self._history([0.9, 0.5])
        assert generations_to_target(history, 0.9) == 1

    def test_never_reached_is_len_plus_one(self):
        history = self._history([0.9, 0.8])
        assert generations_to_target(history, 0.1) == 3


class TestWarmStartPopulation:
    def test_best_first_order(self, source_result):
        seeding = warm_start_population(source_result)
        ranked = [c for c, _ in source_result.ranked()]
        assert seeding == ranked
        assert seeding[0] == source_result.best_chromosome

    def test_truncation_keeps_fittest(self, source_result):
        seeding = warm_start_population(source_result, 3)
        assert len(seeding) == 3
        assert seeding[0] == source_result.best_chromosome


class TestTransferSearch:
    def test_paired_trials_aggregate(self, source_result):
        outcome = transfer_search(
            source_result,
            _dataset(seed=5, shift=0.2),
            _dataset(seed=6, shift=0.2),
            source_backend="a",
            target_backend="b",
            population_size=8,
            generations=2,
            seed=11,
            pairs=2,
        )
        assert isinstance(outcome, TransferOutcome)
        assert [t.seed for t in outcome.trials] == [11, 12]
        assert outcome.cold_generations == sum(
            t.cold_generations for t in outcome.trials
        )
        assert outcome.warm_generations == sum(
            t.warm_generations for t in outcome.trials
        )
        for trial in outcome.trials:
            assert isinstance(trial, TransferTrial)
            # The target is the cold arm's own final best, so the cold
            # arm reaches it within its run by construction.
            assert 1 <= trial.cold_generations <= 2
            assert trial.target_fitness == trial.cold_final
        assert outcome.source_backend == "a"
        assert outcome.target_backend == "b"
        assert outcome.generations_saved == (
            outcome.cold_generations - outcome.warm_generations
        )
        assert outcome.speedup == outcome.cold_generations / max(
            1, outcome.warm_generations
        )
        for score in (outcome.shared_spec_score, outcome.native_spec_score):
            assert set(score) >= {"median_error", "correlation"}

    def test_deterministic(self, source_result):
        kwargs = dict(
            population_size=8, generations=2, seed=11, pairs=1
        )
        a = transfer_search(
            source_result, _dataset(seed=5), _dataset(seed=6), **kwargs
        )
        b = transfer_search(
            source_result, _dataset(seed=5), _dataset(seed=6), **kwargs
        )
        assert a.trials == b.trials
        assert a.shared_spec_score == b.shared_spec_score

    def test_rejects_shape_mismatch(self, source_result):
        narrow = ProfileDataset(("x1",), ("y1",))
        rng = np.random.default_rng(0)
        for _ in range(10):
            narrow.add(
                ProfileRecord("app0", rng.normal(size=1), rng.uniform(size=1), 1.0)
            )
        with pytest.raises(ValueError, match="shape-compatible"):
            transfer_search(source_result, narrow, narrow)

    def test_rejects_zero_pairs(self, source_result):
        with pytest.raises(ValueError, match="at least one"):
            transfer_search(
                source_result,
                _dataset(seed=5),
                _dataset(seed=6),
                pairs=0,
            )


class TestSharedRepresentation:
    def test_refit_recovers_shared_structure(self, source_result):
        """The response family is shared between the two synthetic
        'backends', so the refit spec must predict the target well."""
        score = shared_representation_score(
            source_result,
            _dataset(seed=5, shift=0.2),
            _dataset(seed=6, shift=0.2),
        )
        assert score["median_error"] < 0.25
        assert score["correlation"] > 0.5
