"""Property tests for :class:`repro.spmv.TuningSearch` candidate verification.

The model-guided-search contract: whatever the model predicts, the
*reported* (r, c, cache) is always a truly-measured candidate — the
winner of the verification measurements, never a model-only ranking
winner.  Covered edge cases: true-measurement ties (deterministic,
model-rank order break), measurement failures (skipped, the search
survives), and the empty-verified-set (every measurement fails — an
explicit error, not a silent fall-back to the model's favourite).
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import (
    NoVerifiedCandidateError,
    TuningSearch,
    default_cache,
)


class _StubSpace:
    """A measurement oracle with scripted true values and failures."""

    def __init__(self, true_mflops, fail=()):
        self.true_mflops = dict(true_mflops)
        self.fail = set(fail)
        self.matrix = SimpleNamespace(name="stub")
        self.measured = []

    def software_vector(self, r, c):
        return np.array([float(r), float(c), 1.0])

    def evaluate(self, r, c, cache):
        key = (r, c, cache.key)
        if key in self.fail:
            raise RuntimeError(f"measurement of {key} failed")
        self.measured.append(key)
        mflops = self.true_mflops[key]
        return SimpleNamespace(
            mflops=mflops, nj_per_flop=1.0, time_seconds=1.0 / max(mflops, 1e-9)
        )


class _StubModel:
    """Predicts a scripted score per probe row (per candidate)."""

    def __init__(self, scores):
        self.scores = np.asarray(scores, dtype=float)

    def predict(self, probe):
        return self.scores[: len(probe)]


def _candidates(n):
    cache = default_cache()
    return [(r, 1, cache) for r in range(1, n + 1)]


def _search(true_values, predictions, n, verify_top=3, fail=()):
    cache = default_cache()
    space = _StubSpace(
        {(r, 1, cache.key): v for r, v in zip(range(1, n + 1), true_values)},
        fail={(r, 1, cache.key) for r in fail},
    )
    # The baseline (1, 1) evaluation in the constructor must not count as
    # a verification measurement.
    search = TuningSearch(space, _StubModel(predictions), cache, verify_top)
    space.measured.clear()
    return search, space


finite = st.floats(
    min_value=1.0, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestVerifiedChoiceProperties:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data(), n=st.integers(1, 12), verify_top=st.integers(1, 6))
    def test_choice_is_always_a_truly_measured_candidate(
        self, data, n, verify_top
    ):
        """For any model ranking, the reported tuning was truly measured
        and is the best true measurement among the verified top-k —
        regardless of what the model claimed about anything else."""
        true_values = data.draw(
            st.lists(finite, min_size=n, max_size=n), label="true"
        )
        predictions = data.draw(
            st.lists(finite, min_size=n, max_size=n, unique=True),
            label="predicted",
        )
        search, space = _search(true_values, predictions, n, verify_top)
        best = search.choose_verified(_candidates(n))

        # Truly measured: the winner's mflops is the oracle's value for
        # exactly that configuration, and the measurement really ran.
        assert best.mflops == space.true_mflops[(best.r, 1, best.cache.key)]
        assert (best.r, 1, best.cache.key) in space.measured

        # Best-of-verified: the model's top-k were measured; the winner
        # is their true maximum (not the model's argmax).
        top = np.argsort(predictions)[::-1][:verify_top]
        verified_true = [true_values[int(i)] for i in top]
        assert best.mflops == max(verified_true)
        assert len(space.measured) == min(verify_top, n)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), n=st.integers(2, 10))
    def test_model_only_winner_never_reported_unverified(self, data, n):
        """verify_top=1 is the sharpest case: the single verified
        candidate wins no matter how the true values are arranged."""
        true_values = data.draw(st.lists(finite, min_size=n, max_size=n))
        predictions = data.draw(
            st.lists(finite, min_size=n, max_size=n, unique=True)
        )
        search, space = _search(true_values, predictions, n, verify_top=1)
        best = search.choose_verified(_candidates(n))
        model_favourite = int(np.argmax(predictions))
        assert best.r == model_favourite + 1
        assert space.measured == [(best.r, 1, best.cache.key)]

    def test_true_tie_breaks_toward_model_rank(self):
        """Two verified candidates with identical true performance: the
        one the model ranked higher wins, deterministically."""
        n = 4
        true_values = [50.0, 50.0, 10.0, 10.0]
        predictions = [1.0, 4.0, 3.0, 2.0]  # model order: r=2, r=3, r=4, r=1
        search, _ = _search(true_values, predictions, n, verify_top=4)
        best = search.choose_verified(_candidates(n))
        assert best.r == 2  # ties on 50.0 break toward the higher rank
        # And symmetrically when the ranking flips.
        search, _ = _search(true_values, [4.0, 1.0, 3.0, 2.0], n, verify_top=4)
        assert search.choose_verified(_candidates(n)).r == 1

    def test_failed_measurements_are_skipped(self):
        """A broken configuration cannot poison the search: it is skipped
        and the best *surviving* measurement wins."""
        n = 3
        true_values = [10.0, 99.0, 20.0]
        predictions = [1.0, 3.0, 2.0]  # model loves the broken r=2
        search, space = _search(
            true_values, predictions, n, verify_top=3, fail={2}
        )
        best = search.choose_verified(_candidates(n))
        assert best.r == 3
        assert (2, 1, best.cache.key) not in space.measured

    def test_empty_verified_set_raises(self):
        """Every verification failing is an explicit error — never a
        silent fall-back to the model's unverified favourite."""
        n = 3
        search, _ = _search(
            [10.0, 20.0, 30.0], [1.0, 2.0, 3.0], n, verify_top=2, fail={2, 3}
        )
        with pytest.raises(NoVerifiedCandidateError):
            search.choose_verified(_candidates(n))

    def test_no_candidates_raises(self):
        search, _ = _search([10.0], [1.0], 1)
        with pytest.raises(ValueError, match="no candidates"):
            search.choose_verified([])

    def test_model_free_path_measures_everything(self):
        n = 5
        true_values = [3.0, 9.0, 4.0, 9.0, 1.0]
        cache = default_cache()
        space = _StubSpace(
            {(r, 1, cache.key): v for r, v in zip(range(1, n + 1), true_values)}
        )
        search = TuningSearch(space, model=None, baseline_cache=cache)
        space.measured.clear()
        best = search.choose_verified(_candidates(n))
        assert len(space.measured) == n
        # Exhaustive ties keep the historical max-scan semantics (the
        # later candidate wins) so memoized experiment digests are stable.
        assert best.r == 4
        assert best.predicted == best.mflops  # no model: score is the truth
