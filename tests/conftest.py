"""Shared fixtures for the test suite.

Expensive artifacts (traces, shard statistics) are session-scoped; most
tests use deliberately tiny inputs so the whole suite stays fast.
"""

import numpy as np
import pytest

from repro.core import ProfileDataset, ProfileRecord
from repro.workloads import application_spec, generate_trace


@pytest.fixture(scope="session")
def astar_trace():
    return generate_trace(application_spec("astar"), 20_000, seed=3, shard_length=2_000)


@pytest.fixture(scope="session")
def bwaves_trace():
    return generate_trace(application_spec("bwaves"), 20_000, seed=3, shard_length=2_000)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


def make_synthetic_dataset(
    n_per_app=40,
    apps=("alpha", "beta", "gamma"),
    noise=0.01,
    seed=0,
    nonlinear=False,
):
    """A controlled regression dataset with known structure.

    z = 2 + 0.5*x1 - 0.3*x2 + 0.8*y1 + 0.4*x1*y1 (+ optional x2^2) + noise,
    with a per-application shift in the x distribution so per-application
    splitting is meaningful.
    """
    rng = np.random.default_rng(seed)
    ds = ProfileDataset(("x1", "x2"), ("y1", "y2"))
    for k, app in enumerate(apps):
        for _ in range(n_per_app):
            x = rng.normal(loc=k, scale=1.0, size=2)
            y = rng.uniform(0.5, 2.0, size=2)
            z = 2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.8 * y[0] + 0.4 * x[0] * y[0]
            if nonlinear:
                z += 0.6 * x[1] ** 2
            z += rng.normal(0, noise)
            ds.add(ProfileRecord(app, x, y, float(np.exp(z / 4.0))))
    return ds


@pytest.fixture()
def synthetic_dataset():
    return make_synthetic_dataset()
