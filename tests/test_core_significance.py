"""Unit tests for parameter significance and model serialization."""

import numpy as np
import pytest

from repro.core import (
    Chromosome,
    InferredModel,
    ModelSpec,
    SignificanceReport,
    TransformKind,
    inclusion_frequency,
    interaction_matrix,
    load_model,
    modal_transforms,
    model_from_dict,
    model_to_dict,
    save_model,
    table3_rows,
    transform_histogram,
)
from repro.core.significance import interaction_regions, top_interactions
from tests.conftest import make_synthetic_dataset

NAMES = ("x1", "x2", "y1", "y2")


def pop():
    return [
        Chromosome((1, 0, 4, 2), frozenset({(0, 2)})),
        Chromosome((1, 0, 4, 0), frozenset({(0, 2), (1, 3)})),
        Chromosome((0, 0, 4, 2), frozenset({(0, 2)})),
    ]


class TestSignificance:
    def test_inclusion_frequency(self):
        freq = inclusion_frequency(pop(), NAMES)
        assert freq["x1"] == pytest.approx(2 / 3)
        assert freq["x2"] == 0.0
        assert freq["y1"] == 1.0

    def test_transform_histogram(self):
        hist = transform_histogram(pop(), NAMES)
        assert hist["y1"]["spline, 3 knots"] == 3
        assert hist["x2"]["un-used"] == 3
        assert hist["y2"]["poly, degree 2"] == 2

    def test_modal_transforms(self):
        modal = modal_transforms(pop(), NAMES)
        assert modal["y1"] == "spline, 3 knots"
        assert modal["x2"] == "un-used"
        assert modal["x1"] == "linear"

    def test_table3_rows_partition(self):
        rows = table3_rows(pop(), NAMES)
        all_vars = [v for vs in rows.values() for v in vs]
        assert sorted(all_vars) == sorted(NAMES)

    def test_interaction_matrix_symmetric(self):
        counts = interaction_matrix(pop(), NAMES)
        assert (counts == counts.T).all()
        assert counts[0, 2] == 3
        assert counts[1, 3] == 1

    def test_interaction_regions(self):
        counts = interaction_matrix(pop(), NAMES)
        regions = interaction_regions(counts, n_software=2)
        assert regions["sw-hw"] == 4  # (x1,y1)x3 + (x2,y2)x1
        assert regions["sw-sw"] == 0
        assert regions["hw-hw"] == 0

    def test_top_interactions_sorted(self):
        counts = interaction_matrix(pop(), NAMES)
        top = top_interactions(counts, NAMES)
        assert top[0] == ("x1", "y1", 3)

    def test_report_bundles_everything(self):
        report = SignificanceReport.from_population(pop(), NAMES, n_software=2)
        assert report.n_models == 3
        assert "spline" in report.describe()

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            inclusion_frequency([], NAMES)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            inclusion_frequency(pop(), ("a", "b"))


class TestSerialization:
    def _model(self, **fit_kwargs):
        ds = make_synthetic_dataset()
        spec = ModelSpec(
            transforms={
                "x1": TransformKind.SPLINE,
                "x2": TransformKind.QUADRATIC,
                "y1": TransformKind.LINEAR,
                "y2": TransformKind.EXCLUDED,
            },
            interactions=frozenset({("x1", "y1")}),
        )
        return ds, InferredModel.fit(spec, ds, **fit_kwargs)

    def test_roundtrip_predictions_identical(self):
        ds, model = self._model()
        clone = model_from_dict(model_to_dict(model))
        assert np.allclose(clone.predict(ds), model.predict(ds))

    def test_roundtrip_preserves_spec(self):
        _, model = self._model()
        clone = model_from_dict(model_to_dict(model))
        assert clone.spec.transforms == model.spec.transforms
        assert clone.spec.interactions == model.spec.interactions
        assert clone.response == model.response

    def test_roundtrip_identity_response(self):
        ds, model = self._model(response="identity")
        clone = model_from_dict(model_to_dict(model))
        assert np.allclose(clone.predict(ds), model.predict(ds))

    def test_json_file_roundtrip(self, tmp_path):
        ds, model = self._model()
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        assert np.allclose(clone.predict(ds), model.predict(ds))
        # It really is JSON.
        import json

        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 2
        assert "checksum" in payload

    def test_dict_is_json_compatible(self):
        import json

        _, model = self._model()
        text = json.dumps(model_to_dict(model))
        assert "coefficients" in text

    def test_bad_format_rejected(self):
        _, model = self._model()
        payload = model_to_dict(model)
        payload["format"] = 99
        with pytest.raises(ValueError):
            model_from_dict(payload)

    def test_predict_one_works_after_load(self):
        ds, model = self._model()
        clone = model_from_dict(model_to_dict(model))
        record = ds.records[0]
        assert clone.predict_one(record.x, record.y) == pytest.approx(
            model.predict_one(record.x, record.y)
        )


class TestSerializationOfGAModels:
    def test_ga_best_model_roundtrips(self):
        """The deployment loop end to end: search -> fit -> ship -> load."""
        from repro.core import GeneticSearch

        ds = make_synthetic_dataset(seed=7)
        result = GeneticSearch(population_size=6, seed=3).run(ds, generations=2)
        model = result.best_model(ds)
        clone = model_from_dict(model_to_dict(model))
        assert np.allclose(clone.predict(ds), model.predict(ds))
