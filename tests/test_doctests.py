"""Run the doctests embedded in module documentation."""

import doctest

import pytest

import repro.spmv.bcsr


@pytest.mark.parametrize("module", [repro.spmv.bcsr])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0
    assert result.failed == 0
