"""Unit tests for the genetic search, fitness loop, baselines, and updater."""

import numpy as np
import pytest

from repro.core import (
    Chromosome,
    GeneticSearch,
    InferredModel,
    ModelManager,
    ModelSpec,
    ProfileDataset,
    ProfileRecord,
    TransformKind,
    evaluate_spec,
    manual_general_spec,
    stepwise_search,
)
from repro.core.fitness import FAILED_FITNESS
from tests.conftest import make_synthetic_dataset


def tiny_search(**kwargs):
    params = dict(population_size=8, seed=0)
    params.update(kwargs)
    return GeneticSearch(**params)


class TestFitness:
    def test_evaluates_per_application(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                name: TransformKind.LINEAR
                for name in synthetic_dataset.variable_names
            }
        )
        result = evaluate_spec(spec, synthetic_dataset, np.random.default_rng(0))
        assert set(result.per_application) == set(synthetic_dataset.applications)
        assert result.mean_error == pytest.approx(
            np.mean(list(result.per_application.values()))
        )
        assert result.sum_error == pytest.approx(
            np.sum(list(result.per_application.values()))
        )

    def test_good_spec_scores_well(self, synthetic_dataset):
        spec = ModelSpec(
            transforms={
                name: TransformKind.LINEAR
                for name in synthetic_dataset.variable_names
            },
            interactions=frozenset({("x1", "y1")}),
        )
        result = evaluate_spec(spec, synthetic_dataset, np.random.default_rng(0))
        assert result.mean_error < 0.05

    def test_degenerate_spec_fails_gracefully(self):
        ds = make_synthetic_dataset(n_per_app=2)
        spec = ModelSpec(
            transforms={name: TransformKind.SPLINE for name in ds.variable_names}
        )
        result = evaluate_spec(spec, ds, np.random.default_rng(0))
        assert result.mean_error <= FAILED_FITNESS

    def test_empty_dataset_rejected(self):
        ds = ProfileDataset(("x1",), ("y1",))
        spec = ModelSpec(transforms={"x1": TransformKind.LINEAR,
                                     "y1": TransformKind.LINEAR})
        with pytest.raises(ValueError):
            evaluate_spec(spec, ds, np.random.default_rng(0))


class TestGeneticSearch:
    def test_population_size_maintained(self, synthetic_dataset):
        search = tiny_search()
        result = search.run(synthetic_dataset, generations=3)
        assert len(result.population) == 8
        assert len(result.fitnesses) == 8

    def test_population_sorted_best_first(self, synthetic_dataset):
        result = tiny_search().run(synthetic_dataset, generations=3)
        fitness_values = [f.fitness for f in result.fitnesses]
        assert fitness_values == sorted(fitness_values)
        assert result.best_fitness.fitness == fitness_values[0]

    def test_history_one_record_per_generation(self, synthetic_dataset):
        result = tiny_search().run(synthetic_dataset, generations=4)
        assert [r.generation for r in result.history] == [1, 2, 3, 4]

    def test_elitism_never_regresses(self, synthetic_dataset):
        """With elites surviving unchanged, the best fitness is monotone
        non-increasing across generations (up to split-noise, which we
        eliminate by reusing the evaluator's rng seed stream)."""
        result = tiny_search(seed=3).run(synthetic_dataset, generations=5)
        best = [r.best_fitness for r in result.history]
        # Allow small noise from re-splits but no catastrophic regression.
        assert best[-1] <= best[0] + 0.02

    def test_reproducible(self, synthetic_dataset):
        a = tiny_search(seed=11).run(synthetic_dataset, generations=3)
        b = tiny_search(seed=11).run(synthetic_dataset, generations=3)
        assert a.best_chromosome == b.best_chromosome

    def test_seed_changes_search(self, synthetic_dataset):
        a = tiny_search(seed=11).run(synthetic_dataset, generations=3)
        b = tiny_search(seed=12).run(synthetic_dataset, generations=3)
        assert (
            a.best_chromosome != b.best_chromosome
            or a.best_fitness.fitness != b.best_fitness.fitness
        )

    def test_warm_start_update(self, synthetic_dataset):
        search = tiny_search()
        search.run(synthetic_dataset, generations=2)
        grown = make_synthetic_dataset(apps=("alpha", "beta", "gamma", "delta"))
        second = search.update(grown, generations=2)
        assert len(second.population) == 8

    def test_update_without_run_falls_back(self, synthetic_dataset):
        search = tiny_search()
        result = search.update(synthetic_dataset, generations=2)
        assert result.best_chromosome is not None

    def test_initial_population_seeding(self, synthetic_dataset):
        n_vars = len(synthetic_dataset.variable_names)
        seeded = Chromosome((1,) * n_vars, frozenset())
        result = tiny_search().run(
            synthetic_dataset, generations=1, initial_population=[seeded]
        )
        assert len(result.population) == 8

    def test_best_model_fits_full_dataset(self, synthetic_dataset):
        result = tiny_search().run(synthetic_dataset, generations=2)
        model = result.best_model(synthetic_dataset)
        assert isinstance(model, InferredModel)
        assert np.isfinite(model.predict(synthetic_dataset)).all()

    def test_ranked_ordering(self, synthetic_dataset):
        result = tiny_search().run(synthetic_dataset, generations=2)
        ranked = result.ranked()
        values = [f.fitness for _, f in ranked]
        assert values == sorted(values)

    def test_progress_callback(self, synthetic_dataset):
        seen = []
        tiny_search().run(
            synthetic_dataset, generations=3, progress=seen.append
        )
        assert len(seen) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneticSearch(population_size=2)
        with pytest.raises(ValueError):
            GeneticSearch(elite_fraction=1.5)


class TestStepwise:
    def test_improves_over_intercept(self, synthetic_dataset):
        spec, error = stepwise_search(
            synthetic_dataset, np.random.default_rng(0), max_terms=6
        )
        assert error < 0.5
        assert spec.included_variables or spec.interactions

    def test_finds_main_effects(self):
        ds = make_synthetic_dataset(noise=0.001, n_per_app=60)
        spec, error = stepwise_search(ds, np.random.default_rng(0), max_terms=8)
        assert error < 0.05


class TestManualSpec:
    def test_covers_table_1_and_2_variables(self):
        spec = manual_general_spec()
        names = set(spec.transforms)
        assert {f"x{i}" for i in range(1, 14)} <= names
        assert {f"y{i}" for i in range(1, 14)} <= names

    def test_drops_rare_events(self):
        spec = manual_general_spec()
        assert spec.transforms["x4"] == TransformKind.EXCLUDED
        assert spec.transforms["y12"] == TransformKind.EXCLUDED

    def test_window_splined(self):
        assert manual_general_spec().transforms["y2"] == TransformKind.SPLINE


class TestModelManager:
    def _manager(self, **kwargs):
        ds = make_synthetic_dataset(apps=("alpha", "beta", "gamma"), seed=2)
        params = dict(
            search=tiny_search(),
            generations=2,
            update_generations=1,
            min_update_profiles=4,
        )
        params.update(kwargs)
        return ModelManager(ds, **params)

    def _records(self, app, n, shift=0.0, seed=9):
        rng = np.random.default_rng(seed)
        records = []
        for _ in range(n):
            x = rng.normal(loc=shift, scale=1.0, size=2)
            y = rng.uniform(0.5, 2.0, size=2)
            z = 2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.8 * y[0] + 0.4 * x[0] * y[0]
            records.append(
                ProfileRecord(app, x, y, float(np.exp(z / 4.0)))
            )
        return records

    def test_requires_training_before_observe(self):
        manager = self._manager()
        with pytest.raises(RuntimeError):
            manager.observe(self._records("new", 2))

    def test_train_produces_model(self):
        manager = self._manager()
        model = manager.train()
        assert model is manager.model
        assert manager.steady_state_error < 1.0

    def test_similar_application_absorbed_without_update(self):
        manager = self._manager()
        manager.train()
        outcome = manager.observe(self._records("familiar", 3, shift=1.0))
        assert outcome.accurate
        assert not outcome.update_triggered
        assert "familiar" in manager.dataset.applications

    def test_empty_observation_rejected(self):
        manager = self._manager()
        manager.train()
        with pytest.raises(ValueError):
            manager.observe([])

    def test_mixed_applications_rejected(self):
        manager = self._manager()
        manager.train()
        records = self._records("a", 1) + self._records("b", 1)
        with pytest.raises(ValueError):
            manager.observe(records)

    def test_outlier_waits_for_more_profiles(self):
        """An inaccurate newcomer does not trigger an update until enough
        profiles accrue (§3.3's 10-20 points; hysteresis)."""
        manager = self._manager(min_update_profiles=6, error_tolerance=0.0)
        manager.train()
        outcome = manager.observe(self._records("weird", 2, shift=30.0))
        assert not outcome.accurate
        assert not outcome.update_triggered
        assert manager.pending_profiles("weird") == 2

    def test_update_triggered_after_enough_profiles(self):
        manager = self._manager(min_update_profiles=4, error_tolerance=0.0)
        manager.train()
        manager.observe(self._records("weird", 2, shift=30.0))
        outcome = manager.observe(self._records("weird", 3, shift=30.0, seed=10))
        assert outcome.update_triggered
        assert "weird" in manager.dataset.applications
        assert manager.pending_profiles("weird") == 0

    def test_empty_bootstrap_rejected(self):
        with pytest.raises(ValueError):
            ModelManager(ProfileDataset(("x1",), ("y1",)))


class TestParallelEvaluation:
    def test_n_workers_path_matches_serial(self, synthetic_dataset):
        """The multiprocessing inner loop returns the same fitness values
        as the serial path (the paper's embarrassingly parallel claim)."""
        serial = GeneticSearch(population_size=6, seed=4, n_workers=1).run(
            synthetic_dataset, generations=1
        )
        parallel = GeneticSearch(population_size=6, seed=4, n_workers=2).run(
            synthetic_dataset, generations=1
        )
        assert [f.fitness for f in serial.fitnesses] == pytest.approx(
            [f.fitness for f in parallel.fitnesses]
        )
