"""Tests for the dependency-free SVG chart library and figure builders."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.viz import (
    boxplot_rows,
    grouped_bars,
    heatmap,
    histogram,
    line_chart,
    render,
    BUILDERS,
)
from repro.viz.svg import Frame, _fmt, _ticks


def well_formed(svg_text: str) -> xml.dom.minidom.Document:
    return xml.dom.minidom.parseString(svg_text)


class TestFrame:
    def test_degenerate_ranges_widened(self):
        frame = Frame(1.0, 1.0, 2.0, 2.0)
        assert frame.x_max > frame.x_min
        assert frame.y_max > frame.y_min

    def test_x_mapping_monotone(self):
        frame = Frame(0, 10, 0, 10)
        assert frame.x(0) < frame.x(5) < frame.x(10)

    def test_y_mapping_inverted(self):
        """Larger data y maps to smaller pixel y (SVG grows downward)."""
        frame = Frame(0, 10, 0, 10)
        assert frame.y(10) < frame.y(0)

    def test_plot_area_within_viewport(self):
        frame = Frame(0, 1, 0, 1)
        assert 0 < frame.x(0) < frame.x(1) < frame.width
        assert 0 < frame.y(1) < frame.y(0) < frame.height


class TestHelpers:
    def test_ticks_cover_range(self):
        ticks = _ticks(0, 100)
        assert min(ticks) >= 0
        assert max(ticks) <= 100
        assert len(ticks) >= 2

    def test_ticks_degenerate(self):
        assert _ticks(5, 5)

    def test_fmt_compact(self):
        assert _fmt(0) == "0"
        assert "e" in _fmt(123456.0)
        assert _fmt(0.5) == "0.50"


class TestCharts:
    def test_line_chart_well_formed(self):
        svg = line_chart(
            {"a": ([1, 2, 3], [1.0, 0.5, 0.2]), "b": ([1, 2, 3], [0.9, 0.8, 0.7])},
            "title", "x", "y",
        )
        doc = well_formed(svg)
        assert doc.documentElement.tagName == "svg"
        assert svg.count("<polyline") == 2

    def test_line_chart_needs_series(self):
        with pytest.raises(ValueError):
            line_chart({}, "t", "x", "y")

    def test_histogram_bar_count(self):
        svg = histogram([3, 5, 2], [0, 1, 2, 3], "t", "x")
        well_formed(svg)
        assert svg.count("<rect") == 3 + 1  # bars + background

    def test_histogram_validates_edges(self):
        with pytest.raises(ValueError):
            histogram([1, 2], [0, 1], "t", "x")

    def test_boxplot_rows(self):
        svg = boxplot_rows(
            {"alpha": (0.0, 0.1, 0.2, 0.3, 0.5), "beta": (0.0, 0.2, 0.4, 0.6, 1.0)},
            "t", "error",
        )
        well_formed(svg)
        assert "alpha" in svg and "beta" in svg

    def test_boxplot_needs_rows(self):
        with pytest.raises(ValueError):
            boxplot_rows({}, "t", "x")

    def test_heatmap_cells(self):
        svg = heatmap([[1, 2], [3, 4]], ["r1", "r2"], ["c1", "c2"], "t")
        well_formed(svg)
        assert svg.count("fill=\"rgb(") == 4

    def test_heatmap_constant_grid(self):
        svg = heatmap([[5, 5], [5, 5]], ["a", "b"], ["c", "d"], "t")
        well_formed(svg)

    def test_grouped_bars(self):
        svg = grouped_bars(
            {"g1": {"s1": 1.0, "s2": 2.0}, "g2": {"s1": 1.5}},
            "t", "value",
        )
        well_formed(svg)
        assert "s1" in svg and "s2" in svg

    def test_grouped_bars_needs_groups(self):
        with pytest.raises(ValueError):
            grouped_bars({}, "t", "y")

    def test_document_escapes_text(self):
        svg = line_chart({"<evil>": ([0, 1], [0, 1])}, "a & b", "x", "y")
        well_formed(svg)
        assert "<evil>" not in svg.replace("&lt;evil&gt;", "")


class TestRender:
    def test_builders_cover_graphical_experiments(self):
        assert set(BUILDERS) == {
            "fig03", "fig04", "fig05", "fig07-08", "fig10",
            "fig12-13", "fig14", "fig15", "fig16",
        }

    def test_render_unknown_experiment_is_noop(self, tmp_path):
        assert render("table3", object(), tmp_path) == []

    def test_render_fig05(self, tmp_path):
        from repro.experiments.fig05_convergence import Fig5Result

        result = Fig5Result(
            generations=[1, 2, 3],
            sum_errors=[0.9, 0.7, 0.6],
            best_fitness=[0.13, 0.10, 0.086],
            final_sum_error=0.6,
        )
        written = render("fig05", result, tmp_path)
        assert len(written) == 1
        well_formed(written[0].read_text())

    def test_render_fig15(self, tmp_path):
        from repro.experiments.fig15_topology import Fig15Result

        rng = np.random.default_rng(0)
        grid = rng.uniform(10, 50, size=(8, 8))
        result = Fig15Result(
            profiled=grid,
            predicted=grid * 1.1,
            correlation=0.99,
            true_best=(6, 6),
            predicted_best=(6, 6),
            top_set_overlap=4,
            discontinuity_captured=True,
        )
        written = render("fig15", result, tmp_path)
        assert len(written) == 2
        for path in written:
            well_formed(path.read_text())
