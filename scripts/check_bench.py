#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares freshly emitted ``BENCH_*.json`` reports (and, optionally, the
observability JSONL dumps under ``reports/``) against the committed
baselines in ``benchmarks/baselines/`` and exits non-zero when any
performance metric degraded beyond the tolerance.

Metric direction is inferred from the (dotted) metric name:

* **higher is better** — ``speedup``, ``*_per_sec``, ``*_rps``,
  ``*_hit_rate``, ``mean_batch_occupancy``: fail when the current value
  drops below ``baseline * (1 - tolerance)``.
* **lower is better** — ``*_seconds`` and latency percentiles under a
  ``latency_ms`` block: fail when the current value rises above
  ``baseline * (1 + tolerance)``.  Tail percentiles (p95/p99) are
  inherently noisier at smoke request counts, so they get twice the
  tolerance; ``latency_ms.max`` is a single worst sample and only
  informational.
* everything else (counts, versions, miss totals, histograms, and the
  smoke-scale ``overhead_fraction`` — a ratio of two millisecond-range
  timings, gated instead by the non-smoke benchmark assertion) is
  informational and never gates.
* anything under a ``per_shard`` block is informational regardless of its
  leaf name: per-shard splits depend on how the kernel (or the router)
  happened to balance connections that run, so only the fleet-level
  aggregates gate.  Likewise ``speedup_vs_single`` in the sharded serve
  report — it measures available parallelism, which on shared CI runners
  (or a 1-core machine) is a property of the host, not the code.

A metric present in the baseline but missing from the current report is
always a failure — a silently dropped benchmark must not pass the gate.
Improvements never fail, however large.

The default tolerance is 25% — smoke-scale runs on shared CI hardware are
noisy — and can be overridden with ``--tolerance`` or the
``REPRO_BENCH_TOLERANCE`` environment variable.

Typical CI invocation, after the three ``REPRO_BENCH_SMOKE=1`` smokes::

    python scripts/check_bench.py \
        --metrics reports/metrics_kernels.jsonl \
        --metrics reports/metrics_genetic.jsonl \
        --metrics reports/metrics_serve.jsonl

which compares every ``BENCH_*.json`` found in ``benchmarks/baselines/``
against the file of the same name at the repository root, then checks
each metrics dump exists and recorded at least one non-zero counter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.25

HIGHER_IS_BETTER_SUFFIXES = ("_per_sec", "_rps", "_hit_rate")
HIGHER_IS_BETTER_KEYS = {"speedup", "mean_batch_occupancy", "throughput_rps"}
LOWER_IS_BETTER_SUFFIXES = ("_seconds",)
#: Tail percentiles gate with twice the tolerance (see module docstring).
TAIL_LATENCY_LEAVES = {"p95", "p99"}


def classify(path: str) -> str:
    """Return ``"higher"``, ``"lower"``, or ``"info"`` for a dotted path."""
    if ".per_shard." in f".{path}.":
        return "info"
    leaf = path.rsplit(".", 1)[-1]
    if leaf in HIGHER_IS_BETTER_KEYS or leaf.endswith(HIGHER_IS_BETTER_SUFFIXES):
        return "higher"
    if leaf.endswith(LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    if ".latency_ms." in f".{path}." and leaf != "max":
        return "lower"
    return "info"


def tolerance_for(path: str, tolerance: float) -> float:
    """Per-metric tolerance: tail latency percentiles get 2x headroom."""
    if path.rsplit(".", 1)[-1] in TAIL_LATENCY_LEAVES:
        return tolerance * 2.0
    return tolerance


def flatten(payload, prefix: str = "") -> dict:
    """Flatten nested dicts to ``{"a.b.c": number}``; non-numbers dropped."""
    flat: dict = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def compare_reports(
    baseline: dict, current: dict, tolerance: float, label: str
) -> list:
    """Return a list of human-readable failure strings for one report."""
    failures = []
    if baseline.get("smoke") != current.get("smoke"):
        failures.append(
            f"{label}: smoke={current.get('smoke')} does not match baseline "
            f"smoke={baseline.get('smoke')} — compare like with like"
        )
        return failures

    base_flat = flatten(baseline)
    cur_flat = flatten(current)
    for path in sorted(base_flat):
        direction = classify(path)
        if direction == "info":
            continue
        base = base_flat[path]
        if path not in cur_flat:
            failures.append(f"{label}: {path} missing from current report")
            continue
        cur = cur_flat[path]
        if base <= 0:
            continue  # no meaningful ratio
        allowed = tolerance_for(path, tolerance)
        if direction == "higher" and cur < base * (1.0 - allowed):
            failures.append(
                f"{label}: {path} degraded {cur:g} < {base:g} "
                f"(floor {base * (1.0 - allowed):g} at {allowed:.0%})"
            )
        elif direction == "lower" and cur > base * (1.0 + allowed):
            failures.append(
                f"{label}: {path} degraded {cur:g} > {base:g} "
                f"(ceiling {base * (1.0 + allowed):g} at {allowed:.0%})"
            )
    return failures


def check_metrics_jsonl(path: Path) -> list:
    """A metrics dump must exist, parse, and show non-zero counter work."""
    label = str(path)
    if not path.exists():
        return [f"{label}: metrics dump missing"]
    rows = []
    try:
        with open(path) as handle:
            for line in handle:
                if line.strip():
                    rows.append(json.loads(line))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{label}: unreadable metrics dump ({exc})"]
    if not rows:
        return [f"{label}: metrics dump is empty"]
    counters = [r for r in rows if r.get("type") == "counter"]
    if not any(r.get("value", 0) > 0 for r in counters):
        return [f"{label}: no counter recorded a non-zero value"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json reports against committed baselines."
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "allowed fractional degradation (default "
            f"{DEFAULT_TOLERANCE}, or $REPRO_BENCH_TOLERANCE)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="append",
        type=Path,
        default=[],
        help="metrics JSONL dump that must exist with non-zero counters "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(
            os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)
        )
    if tolerance < 0:
        parser.error("--tolerance must be >= 0")

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 2

    failures = []
    checked = 0
    for baseline_path in baselines:
        current_path = args.current_dir / baseline_path.name
        label = baseline_path.name
        if not current_path.exists():
            failures.append(f"{label}: current report {current_path} missing")
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        report_failures = compare_reports(baseline, current, tolerance, label)
        failures.extend(report_failures)
        gated = sum(
            1 for p in flatten(baseline) if classify(p) != "info"
        )
        checked += gated
        status = "FAIL" if report_failures else "ok"
        print(f"[{status}] {label}: {gated} gated metrics "
              f"(tolerance {tolerance:.0%})")

    for metrics_path in args.metrics:
        metric_failures = check_metrics_jsonl(metrics_path)
        failures.extend(metric_failures)
        status = "FAIL" if metric_failures else "ok"
        print(f"[{status}] {metrics_path}")

    if failures:
        print(f"\n{len(failures)} benchmark gate failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall clear: {checked} gated metrics within {tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
